//! The SIMCoV-GPU driver: owns the PGAS runtime, the devices, the replicated
//! vascular pool and the statistics log.

use gpusim::device::LinkTraffic;
use gpusim::metrics::{MetricsSink, SnapshotTaker, StepRecord};
use gpusim::{CostModel, DeviceCounters};
use pgas::{allreduce, Bsp, WorkPool};
use simcov_core::decomp::{Partition, Strategy};
use simcov_core::extrav::TrialTable;
use simcov_core::foi::FoiPattern;
use simcov_core::params::SimParams;
use simcov_core::stats::{StepStats, TimeSeries};
use simcov_core::tcell::VascularPool;
use simcov_core::world::World;

use crate::device::GpuDevice;
use crate::msg::GpuMsg;
use crate::variants::GpuVariant;

/// Configuration of a multi-device GPU run.
#[derive(Debug, Clone)]
pub struct GpuSimConfig {
    pub params: SimParams,
    /// Number of simulated devices.
    pub n_devices: usize,
    pub strategy: Strategy,
    pub pattern: FoiPattern,
    pub variant: GpuVariant,
    /// Memory-tile side in voxels (§3.2).
    pub tile_side: usize,
    /// Steps between active-tile checks; defaults to the tile side (the
    /// paper's maximum safe period). Must be ≤ `tile_side`.
    pub check_period: Option<u64>,
    /// Devices per node (NVLink domain). Perlmutter: 4.
    pub devices_per_node: usize,
}

impl GpuSimConfig {
    pub fn new(params: SimParams, n_devices: usize) -> Self {
        GpuSimConfig {
            params,
            n_devices,
            strategy: Strategy::Blocks,
            pattern: FoiPattern::UniformLattice,
            variant: GpuVariant::Combined,
            tile_side: 8,
            check_period: None,
            devices_per_node: 4,
        }
    }

    pub fn with_variant(mut self, v: GpuVariant) -> Self {
        self.variant = v;
        self
    }
}

/// A running multi-device SIMCoV-GPU simulation.
pub struct GpuSim {
    pub params: SimParams,
    pub partition: Partition,
    pool: WorkPool,
    bsp: Bsp<GpuMsg>,
    pub devices: Vec<GpuDevice>,
    pub vascular: VascularPool,
    pub step: u64,
    pub history: TimeSeries,
    /// Installed per-step metrics consumer (None: metrics are off and the
    /// step loop takes no clock readings).
    metrics: Option<Box<dyn MetricsSink>>,
    snapshots: SnapshotTaker,
    prev_comm: pgas::CommCounters,
}

impl GpuSim {
    pub fn new(cfg: GpuSimConfig) -> Self {
        cfg.params.validate().expect("invalid parameters");
        let world = World::seeded(&cfg.params, cfg.pattern);
        Self::from_world(cfg, world)
    }

    pub fn from_world(cfg: GpuSimConfig, world: World) -> Self {
        assert_eq!(cfg.params.dims, world.dims);
        let partition = Partition::new(cfg.params.dims, cfg.n_devices, cfg.strategy);
        let devices: Vec<GpuDevice> = (0..cfg.n_devices)
            .map(|d| {
                GpuDevice::new(
                    d,
                    &partition,
                    &world,
                    cfg.variant,
                    cfg.tile_side,
                    cfg.check_period.unwrap_or(cfg.tile_side as u64),
                    cfg.devices_per_node,
                )
            })
            .collect();
        GpuSim {
            params: cfg.params,
            partition,
            pool: WorkPool::host_sized(),
            bsp: Bsp::new(cfg.n_devices),
            devices,
            vascular: VascularPool::new(),
            step: 0,
            history: TimeSeries::default(),
            metrics: None,
            snapshots: SnapshotTaker::new(),
            prev_comm: pgas::CommCounters::default(),
        }
    }

    /// Install a per-step metrics consumer; every subsequent
    /// [`advance_step`](Self::advance_step) emits one [`StepRecord`].
    pub fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink>) {
        self.metrics = Some(sink);
    }

    /// Turn on per-superstep tracing in the underlying BSP runtime.
    pub fn enable_trace(&mut self) {
        self.bsp.enable_trace();
    }

    /// The runtime's superstep trace (empty unless [`enable_trace`](Self::enable_trace)
    /// was called).
    pub fn trace(&self) -> &pgas::Trace {
        &self.bsp.trace
    }

    /// Advance one timestep (two supersteps — the two communication waves
    /// of Fig. 2 — plus the statistics allreduce).
    pub fn advance_step(&mut self) {
        // Only read the clock when someone is listening.
        let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let t = self.step;
        let p = self.params.clone();
        let trials = TrialTable::build(&p, t, self.vascular.circulating());
        let p_ref = &p;
        let trials_ref = &trials;

        let _extrav: Vec<u64> =
            self.bsp
                .superstep(&self.pool, &mut self.devices, |_d, dev, inbox, out| {
                    dev.plan_and_bid(p_ref, t, trials_ref, inbox, out)
                });

        let partials: Vec<StepStats> =
            self.bsp
                .superstep(&self.pool, &mut self.devices, |_d, dev, inbox, out| {
                    dev.resolve_and_update(p_ref, t, inbox, out)
                });

        let mut stats = allreduce(
            &partials,
            |mut a, b| {
                a += b;
                a
            },
            std::mem::size_of::<StepStats>(),
            &mut self.bsp.counters,
        );
        self.vascular.advance(
            t,
            p.tcell_generation_rate,
            p.tcell_initial_delay,
            p.tcell_vascular_period,
            stats.extravasated,
        );
        stats.tcells_vasculature = self.vascular.circulating();
        stats.step = t;
        self.history.push(stats);
        self.step += 1;
        if let Some(t0) = t0 {
            self.emit_step_record(t, t0.elapsed().as_secs_f64());
        }
    }

    fn emit_step_record(&mut self, step: u64, real_seconds: f64) {
        let comm = self.bsp.counters;
        let d_msgs = (comm.messages + comm.bulk_messages)
            .saturating_sub(self.prev_comm.messages + self.prev_comm.bulk_messages);
        let d_bytes = (comm.bytes + comm.bulk_bytes)
            .saturating_sub(self.prev_comm.bytes + self.prev_comm.bulk_bytes);
        self.prev_comm = comm;

        let model = CostModel::default();
        let total = self.total_counters();
        let phases = self.snapshots.take(step, &total, &model, &model.gpu);
        let stats = self.history.steps.last().expect("step just pushed");
        let rec = StepRecord {
            step,
            agents: stats.tcells_tissue,
            virions: stats.virions,
            chemokine: stats.chemokine,
            active_units: self.devices.iter().map(|d| d.n_active_tiles() as u64).sum(),
            comm_messages: d_msgs,
            comm_bytes: d_bytes,
            sim_seconds: phases.cost.total() / self.partition.n_ranks().max(1) as f64,
            real_seconds,
            phases,
        };
        if let Some(sink) = self.metrics.as_mut() {
            sink.record(rec);
        }
    }

    pub fn run(&mut self) {
        while self.step < self.params.steps {
            self.advance_step();
        }
    }

    pub fn gather_world(&self) -> World {
        let mut world = World::healthy(self.params.dims);
        for d in &self.devices {
            d.write_into(&mut world);
        }
        world
    }

    pub fn comm_counters(&self) -> pgas::CommCounters {
        self.bsp.counters
    }

    /// The busiest device's work counters (compute critical path).
    pub fn max_device_counters(&self) -> DeviceCounters {
        self.devices
            .iter()
            .fold(DeviceCounters::new(), |acc, d| acc.max(&d.counters))
    }

    pub fn total_counters(&self) -> DeviceCounters {
        self.devices.iter().fold(DeviceCounters::new(), |mut a, d| {
            a.merge(&d.counters);
            a
        })
    }

    /// The busiest device's link traffic and the aggregate.
    pub fn max_device_link(&self) -> LinkTraffic {
        self.devices
            .iter()
            .fold(LinkTraffic::default(), |a, d| LinkTraffic {
                intra_msgs: a.intra_msgs.max(d.link.intra_msgs),
                intra_bytes: a.intra_bytes.max(d.link.intra_bytes),
                inter_msgs: a.inter_msgs.max(d.link.inter_msgs),
                inter_bytes: a.inter_bytes.max(d.link.inter_bytes),
            })
    }

    pub fn last_stats(&self) -> Option<&StepStats> {
        self.history.steps.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_core::grid::GridDims;
    use simcov_core::serial::SerialSim;

    fn test_params(steps: u64) -> SimParams {
        SimParams::test_config(GridDims::new2d(24, 24), steps, 2, 42)
    }

    fn assert_matches_serial(n_devices: usize, variant: GpuVariant, steps: u64) {
        let p = test_params(steps);
        let mut serial = SerialSim::new(p.clone());
        serial.run();

        let cfg = GpuSimConfig::new(p, n_devices).with_variant(variant);
        let mut gpu = GpuSim::new(cfg);
        gpu.run();

        let world = gpu.gather_world();
        if let Some((idx, why)) = serial.world.first_difference(&world) {
            panic!(
                "state diverged at voxel {idx} after {steps} steps ({n_devices} devices, {variant:?}): {why}"
            );
        }
        for (a, b) in serial.history.steps.iter().zip(gpu.history.steps.iter()) {
            assert!(
                a.approx_eq(b, 1e-9),
                "stats diverged at step {}: {a:?} vs {b:?}",
                a.step
            );
        }
    }

    #[test]
    fn combined_matches_serial_4_devices() {
        assert_matches_serial(4, GpuVariant::Combined, 150);
    }

    #[test]
    fn unoptimized_matches_serial_4_devices() {
        assert_matches_serial(4, GpuVariant::Unoptimized, 100);
    }

    #[test]
    fn fast_reduction_matches_serial_2_devices() {
        assert_matches_serial(2, GpuVariant::FastReduction, 100);
    }

    #[test]
    fn memory_tiling_matches_serial_9_devices() {
        assert_matches_serial(9, GpuVariant::MemoryTiling, 100);
    }

    #[test]
    fn single_device_matches_serial() {
        assert_matches_serial(1, GpuVariant::Combined, 100);
    }

    #[test]
    fn variants_agree_with_each_other_bitwise() {
        let p = test_params(120);
        let mut worlds = Vec::new();
        for v in GpuVariant::ALL {
            let mut sim = GpuSim::new(GpuSimConfig::new(p.clone(), 4).with_variant(v));
            sim.run();
            worlds.push((v, sim.gather_world()));
        }
        for w in &worlds[1..] {
            assert!(
                worlds[0].1.first_difference(&w.1).is_none(),
                "variant {:?} diverged from {:?}",
                w.0,
                worlds[0].0
            );
        }
    }

    #[test]
    fn tiling_reduces_update_work() {
        // Needs a grid large enough to contain inactive interior tiles.
        let mut p = SimParams::test_config(GridDims::new2d(64, 64), 60, 1, 7);
        p.tcell_generation_rate = 0.0; // keep activity localized to the focus
        let mut cfg = GpuSimConfig::new(p.clone(), 4).with_variant(GpuVariant::Combined);
        cfg.tile_side = 4;
        let mut tiled = GpuSim::new(cfg);
        tiled.run();
        let mut full = GpuSim::new(GpuSimConfig::new(p, 4).with_variant(GpuVariant::FastReduction));
        full.run();
        let tiled_work = tiled.total_counters().update.elements;
        let full_work = full.total_counters().update.elements;
        assert!(
            tiled_work < full_work,
            "tiling should skip inactive tiles: {tiled_work} >= {full_work}"
        );
    }

    #[test]
    fn reduce_strategy_changes_atomic_counts() {
        let p = test_params(60);
        let mut tree =
            GpuSim::new(GpuSimConfig::new(p.clone(), 4).with_variant(GpuVariant::FastReduction));
        tree.run();
        let mut atomic = GpuSim::new(GpuSimConfig::new(p, 4).with_variant(GpuVariant::Unoptimized));
        atomic.run();
        assert!(
            tree.total_counters().reduce.atomics * 10 < atomic.total_counters().reduce.atomics,
            "tree reduction should slash atomics"
        );
        assert!(tree.total_counters().reduce.smem_ops > 0);
    }

    #[test]
    fn check_period_does_not_change_results_but_changes_cost() {
        let p = test_params(120);
        let run = |period: u64| {
            let mut cfg = GpuSimConfig::new(p.clone(), 4);
            cfg.tile_side = 8;
            cfg.check_period = Some(period);
            let mut sim = GpuSim::new(cfg);
            sim.run();
            (sim.gather_world(), sim.total_counters().tile_check.launches)
        };
        let (w1, checks1) = run(1);
        let (w8, checks8) = run(8);
        assert!(w1.first_difference(&w8).is_none(), "period changed results");
        assert!(
            checks1 > checks8 * 4,
            "shorter period must sweep more often: {checks1} vs {checks8}"
        );
    }

    #[test]
    #[should_panic]
    fn check_period_beyond_tile_side_rejected() {
        let p = test_params(10);
        let mut cfg = GpuSimConfig::new(p, 4);
        cfg.tile_side = 4;
        cfg.check_period = Some(5); // unsafe: buffer can be outrun
        let _ = GpuSim::new(cfg);
    }

    #[test]
    fn halo_traffic_recorded_with_locality() {
        let p = test_params(60);
        // 8 devices with 4 per node: both intra- and inter-node links exist.
        let mut sim = GpuSim::new(GpuSimConfig::new(p, 8));
        sim.run();
        let total: LinkTraffic = sim.devices.iter().fold(LinkTraffic::default(), |mut a, d| {
            a.merge(&d.link);
            a
        });
        assert!(total.intra_msgs > 0);
        assert!(total.inter_msgs > 0);
        assert!(total.intra_bytes + total.inter_bytes > 0);
    }
}
