//! The SIMCoV-GPU executor behind the unified [`Simulation`](simcov_driver::Simulation) driver API.
//!
//! `GpuSim` owns the PGAS runtime and the simulated devices; the step loop,
//! statistics, checkpointing, fault recovery and metrics live in the shared
//! driver shell ([`simcov_driver::DriverCore`]) driven through the
//! [`simcov_driver::Executor`] contract. Every recovery/retry/quarantine
//! *decision* along the way is made by the pure control-plane core
//! ([`simcov_driver::DriverState`]); with
//! `Simulation::enable_event_recording` the run's control decisions replay
//! deterministically from the recorded event log.

use gpusim::device::LinkTraffic;
use gpusim::{CostModel, DeviceCounters, HwProfile};
use pgas::fault::{FaultPlan, IntegrityRecord, PendingStateCorruption, SuperstepError};
use pgas::{allreduce, Bsp, CommCounters, Trace, TransportMode, WorkPool};
use simcov_core::decomp::{Partition, Strategy};
use simcov_core::extrav::TrialTable;
use simcov_core::foi::FoiPattern;
use simcov_core::lanes::KernelMode;
use simcov_core::params::SimParams;
use simcov_core::stats::StatsPartial;
use simcov_core::world::World;
use simcov_driver::{ConfigError, DriverCore, Executor, RecoveryPolicy};

use crate::device::GpuDevice;
use crate::msg::GpuMsg;
use crate::variants::GpuVariant;

/// Configuration of a multi-device GPU run.
#[derive(Debug, Clone)]
pub struct GpuSimConfig {
    pub params: SimParams,
    /// Number of simulated devices.
    pub n_devices: usize,
    pub strategy: Strategy,
    pub pattern: FoiPattern,
    pub variant: GpuVariant,
    /// Memory-tile side in voxels (§3.2).
    pub tile_side: usize,
    /// Steps between active-tile checks; defaults to the tile side (the
    /// paper's maximum safe period). Must be ≤ `tile_side`.
    pub check_period: Option<u64>,
    /// Devices per node (NVLink domain). Perlmutter: 4.
    pub devices_per_node: usize,
    /// Fault schedule to arm on the BSP runtime (empty: healthy run).
    pub fault_plan: FaultPlan,
    /// Explicit recovery policy. `None` engages the default policy when a
    /// fault plan is armed, and no recovery otherwise.
    pub recovery: Option<RecoveryPolicy>,
    /// Integrity audit period override. `None` keeps the default behavior
    /// (audits engage automatically when the fault plan injects
    /// corruption); `Some(p)` engages the monitor explicitly with period
    /// `p` (0 = scrub-only, no periodic invariant audit).
    pub audit_period: Option<u64>,
    /// In-barrier retransmit budget override for corrupt batches.
    pub retransmit_budget: Option<u64>,
    /// Diffusion kernel selection (default [`KernelMode::Wide`]; `Scalar`
    /// keeps the reference path alive as the differential oracle). Bitwise
    /// identical either way.
    pub kernel: KernelMode,
    /// Worker-thread count for the shared [`WorkPool`] running device
    /// superstep bodies concurrently. `None` keeps the host-sized default
    /// pool; `Some(0)` forces inline execution; `Some(n)` pins `n` workers.
    /// Trajectories are bitwise identical for every value.
    pub threads: Option<usize>,
    /// Exchange transport. [`TransportMode::InProcess`] (default) uses the
    /// double-buffered mailboxes; [`TransportMode::Process`] runs one worker
    /// process per device over local sockets. Bitwise identical either way.
    pub transport: TransportMode,
}

impl GpuSimConfig {
    pub fn new(params: SimParams, n_devices: usize) -> Self {
        GpuSimConfig {
            params,
            n_devices,
            strategy: Strategy::Blocks,
            pattern: FoiPattern::UniformLattice,
            variant: GpuVariant::Combined,
            tile_side: 8,
            check_period: None,
            devices_per_node: 4,
            fault_plan: FaultPlan::none(),
            recovery: None,
            audit_period: None,
            retransmit_budget: None,
            kernel: KernelMode::default(),
            threads: None,
            transport: TransportMode::InProcess,
        }
    }

    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    pub fn with_variant(mut self, v: GpuVariant) -> Self {
        self.variant = v;
        self
    }

    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn with_pattern(mut self, pattern: FoiPattern) -> Self {
        self.pattern = pattern;
        self
    }

    pub fn with_tile_side(mut self, tile_side: usize) -> Self {
        self.tile_side = tile_side;
        self
    }

    pub fn with_check_period(mut self, period: u64) -> Self {
        self.check_period = Some(period);
        self
    }

    pub fn with_devices_per_node(mut self, devices_per_node: usize) -> Self {
        self.devices_per_node = devices_per_node;
        self
    }

    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    pub fn with_audit_period(mut self, period: u64) -> Self {
        self.audit_period = Some(period);
        self
    }

    pub fn with_retransmit_budget(mut self, budget: u64) -> Self {
        self.retransmit_budget = Some(budget);
        self
    }

    pub fn with_transport(mut self, transport: TransportMode) -> Self {
        self.transport = transport;
        self
    }

    /// Validate the GPU-specific knobs (the shared ones are checked by
    /// [`DriverCore::new`]). Public so spec layers (the sweep server's
    /// `RunSpec`) can pre-validate a submission without building devices.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tile_side == 0 {
            return Err(ConfigError::ZeroTileSide);
        }
        if self.devices_per_node == 0 {
            return Err(ConfigError::ZeroDevicesPerNode);
        }
        let period = self.check_period.unwrap_or(self.tile_side as u64);
        // An active tile's halo buffer absorbs one voxel of spread per
        // step; after `tile_side` unchecked steps it can be outrun, so any
        // longer period risks missing activity (paper §3.2).
        if period == 0 || period > self.tile_side as u64 {
            return Err(ConfigError::CheckPeriodOutOfRange {
                check_period: period,
                tile_side: self.tile_side,
            });
        }
        Ok(())
    }
}

/// A running multi-device SIMCoV-GPU simulation. Program against it through
/// the [`Simulation`](simcov_driver::Simulation) trait.
pub struct GpuSim {
    core: DriverCore,
    bsp: Bsp<GpuMsg>,
    pub devices: Vec<GpuDevice>,
    variant: GpuVariant,
    tile_side: usize,
    check_period: u64,
    devices_per_node: usize,
    kernel: KernelMode,
}

impl GpuSim {
    pub fn new(cfg: GpuSimConfig) -> Result<Self, ConfigError> {
        cfg.params.validate().map_err(ConfigError::InvalidParams)?;
        let world = World::seeded(&cfg.params, cfg.pattern);
        Self::from_world(cfg, world)
    }

    pub fn from_world(cfg: GpuSimConfig, world: World) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut core = DriverCore::new(
            cfg.params,
            cfg.n_devices,
            cfg.strategy,
            &cfg.fault_plan,
            cfg.recovery,
        )?;
        if let Some(period) = cfg.audit_period {
            core.enable_integrity(period);
        }
        core.check_world(&world)?;
        if let Some(n) = cfg.threads {
            // Pin the worker count: device superstep bodies run truly
            // concurrently on `n` workers (0 = inline). The pool only
            // schedules — reduction order is fixed by `allreduce`/`ExactSum`
            // — so every thread count yields the same bits.
            core.share_pool(std::sync::Arc::new(WorkPool::new(n)));
        }
        let check_period = cfg.check_period.unwrap_or(cfg.tile_side as u64);
        let devices: Vec<GpuDevice> = (0..cfg.n_devices)
            .map(|d| {
                GpuDevice::new(
                    d,
                    &core.partition,
                    &world,
                    cfg.variant,
                    cfg.tile_side,
                    check_period,
                    cfg.devices_per_node,
                    cfg.kernel,
                )
            })
            .collect();
        let mut bsp = Bsp::new(cfg.n_devices);
        bsp.inject_faults(cfg.fault_plan);
        if let Some(budget) = cfg.retransmit_budget {
            bsp.set_retransmit_budget(budget);
        }
        if let TransportMode::Process(tcfg) = cfg.transport {
            bsp.attach_process_transport(tcfg)
                .map_err(|e| ConfigError::Transport(e.to_string()))?;
        }
        Ok(GpuSim {
            core,
            bsp,
            devices,
            variant: cfg.variant,
            tile_side: cfg.tile_side,
            check_period,
            devices_per_node: cfg.devices_per_node,
            kernel: cfg.kernel,
        })
    }

    /// The current domain decomposition (re-partitioned after recovery).
    pub fn partition(&self) -> &Partition {
        &self.core.partition
    }

    /// The busiest device's work counters (compute critical path).
    pub fn max_device_counters(&self) -> DeviceCounters {
        self.devices
            .iter()
            .fold(DeviceCounters::new(), |acc, d| acc.max(&d.counters))
    }

    /// The busiest device's link traffic fields, taken independently.
    pub fn max_device_link(&self) -> LinkTraffic {
        self.devices
            .iter()
            .fold(LinkTraffic::default(), |a, d| LinkTraffic {
                intra_msgs: a.intra_msgs.max(d.link.intra_msgs),
                intra_bytes: a.intra_bytes.max(d.link.intra_bytes),
                inter_msgs: a.inter_msgs.max(d.link.inter_msgs),
                inter_bytes: a.inter_bytes.max(d.link.inter_bytes),
            })
    }
}

impl Executor for GpuSim {
    fn core(&self) -> &DriverCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut DriverCore {
        &mut self.core
    }

    fn exec_name(&self) -> &'static str {
        "gpu"
    }

    fn unit_count(&self) -> usize {
        self.devices.len()
    }

    fn live_active_units(&self) -> u64 {
        self.devices.iter().map(|d| d.n_active_tiles() as u64).sum()
    }

    fn live_counters(&self) -> DeviceCounters {
        self.devices.iter().fold(DeviceCounters::new(), |mut a, d| {
            a.merge(&d.counters);
            a
        })
    }

    fn hw_profile<'a>(&self, model: &'a CostModel) -> &'a HwProfile {
        &model.gpu
    }

    fn bsp_counters(&self) -> CommCounters {
        self.bsp.counters
    }

    fn bsp_trace(&self) -> &Trace {
        &self.bsp.trace
    }

    fn bsp_enable_trace(&mut self) {
        self.bsp.enable_trace();
    }

    fn wire_counters(&self) -> Option<pgas::TransportCounters> {
        self.bsp
            .has_transport()
            .then(|| self.bsp.transport_counters().clone())
    }

    fn attach_unit_telemetry(&mut self) {
        self.bsp.attach_telemetry(self.core.telemetry.clone());
        for d in &mut self.devices {
            d.attach_telemetry(self.core.telemetry.clone());
        }
    }

    fn take_rank_walls(&mut self) -> Vec<simcov_telemetry::RankWalls> {
        self.bsp.take_rank_walls()
    }

    fn per_unit_active(&self) -> Vec<u64> {
        self.devices
            .iter()
            .map(|d| d.n_active_tiles() as u64)
            .collect()
    }

    /// One timestep = two supersteps (the two communication waves of
    /// Fig. 2) + the statistics allreduce.
    fn compute_step(
        &mut self,
        t: u64,
        trials: &TrialTable,
    ) -> Result<StatsPartial, SuperstepError> {
        let p = self.core.params.clone();
        let p_ref = &p;

        let _extrav: Vec<u64> =
            self.bsp
                .try_superstep(&self.core.pool, &mut self.devices, |_d, dev, inbox, out| {
                    dev.plan_and_bid(p_ref, t, trials, inbox, out)
                })?;

        let partials: Vec<StatsPartial> =
            self.bsp
                .try_superstep(&self.core.pool, &mut self.devices, |_d, dev, inbox, out| {
                    dev.resolve_and_update(p_ref, t, inbox, out)
                })?;

        // Exact summation makes the result independent of device count.
        Ok(allreduce(
            &partials,
            |mut a, b| {
                a += b;
                a
            },
            std::mem::size_of::<StatsPartial>(),
            &mut self.bsp.counters,
        ))
    }

    fn take_pending_state_corruptions(&mut self) -> Vec<PendingStateCorruption> {
        self.bsp.take_pending_state_corruptions()
    }

    fn corrupt_unit_state(&mut self, unit: usize, seed: u64) {
        if let Some(d) = self.devices.get_mut(unit) {
            d.corrupt_bit(seed);
        }
    }

    fn take_bsp_integrity_records(&mut self) -> Vec<IntegrityRecord> {
        self.bsp.take_integrity_records()
    }

    fn rebuild(&mut self, world: &World, n_units: usize) -> Result<(), ConfigError> {
        let partition = Partition::try_new(self.core.params.dims, n_units, self.core.strategy)
            .map_err(ConfigError::Partition)?;
        self.devices = (0..n_units)
            .map(|d| {
                GpuDevice::new(
                    d,
                    &partition,
                    world,
                    self.variant,
                    self.tile_side,
                    self.check_period,
                    self.devices_per_node,
                    self.kernel,
                )
            })
            .collect();
        let bsp = std::mem::replace(&mut self.bsp, Bsp::new(1));
        self.bsp = bsp.rebuilt(n_units);
        // Telemetry must survive the elastic shrink: the BSP handle rides
        // through `rebuilt`, but the devices are brand new.
        if self.core.telemetry.is_enabled() {
            self.attach_unit_telemetry();
        }
        self.core.partition = partition;
        Ok(())
    }

    fn assemble_world(&self) -> World {
        let mut world = World::healthy(self.core.params.dims);
        for d in &self.devices {
            d.write_into(&mut world);
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_core::grid::GridDims;
    use simcov_core::serial::SerialSim;
    use simcov_driver::Simulation;

    fn test_params(steps: u64) -> SimParams {
        SimParams::test_config(GridDims::new2d(24, 24), steps, 2, 42)
    }

    fn assert_matches_serial(n_devices: usize, variant: GpuVariant, steps: u64) {
        let p = test_params(steps);
        let mut serial = SerialSim::new(p.clone());
        serial.run();

        let cfg = GpuSimConfig::new(p, n_devices).with_variant(variant);
        let mut gpu = GpuSim::new(cfg).expect("valid config");
        gpu.run().expect("healthy run");

        let world = gpu.gather_world();
        if let Some((idx, why)) = serial.world.first_difference(&world) {
            panic!(
                "state diverged at voxel {idx} after {steps} steps ({n_devices} devices, {variant:?}): {why}"
            );
        }
        // Exact statistics reduction: serial and GPU histories are bitwise
        // identical, not just close.
        assert_eq!(
            serial.history,
            *gpu.history(),
            "stats must be bitwise identical across executors"
        );
    }

    #[test]
    fn combined_matches_serial_4_devices() {
        assert_matches_serial(4, GpuVariant::Combined, 150);
    }

    #[test]
    fn unoptimized_matches_serial_4_devices() {
        assert_matches_serial(4, GpuVariant::Unoptimized, 100);
    }

    #[test]
    fn fast_reduction_matches_serial_2_devices() {
        assert_matches_serial(2, GpuVariant::FastReduction, 100);
    }

    #[test]
    fn memory_tiling_matches_serial_9_devices() {
        assert_matches_serial(9, GpuVariant::MemoryTiling, 100);
    }

    #[test]
    fn single_device_matches_serial() {
        assert_matches_serial(1, GpuVariant::Combined, 100);
    }

    #[test]
    fn variants_agree_with_each_other_bitwise() {
        let p = test_params(120);
        let mut worlds = Vec::new();
        for v in GpuVariant::ALL {
            let mut sim = GpuSim::new(GpuSimConfig::new(p.clone(), 4).with_variant(v)).unwrap();
            sim.run().unwrap();
            worlds.push((v, sim.gather_world()));
        }
        for w in &worlds[1..] {
            assert!(
                worlds[0].1.first_difference(&w.1).is_none(),
                "variant {:?} diverged from {:?}",
                w.0,
                worlds[0].0
            );
        }
    }

    #[test]
    fn tiling_reduces_update_work() {
        // Needs a grid large enough to contain inactive interior tiles.
        let mut p = SimParams::test_config(GridDims::new2d(64, 64), 60, 1, 7);
        p.tcell_generation_rate = 0.0; // keep activity localized to the focus
        let cfg = GpuSimConfig::new(p.clone(), 4)
            .with_variant(GpuVariant::Combined)
            .with_tile_side(4);
        let mut tiled = GpuSim::new(cfg).unwrap();
        tiled.run().unwrap();
        let mut full =
            GpuSim::new(GpuSimConfig::new(p, 4).with_variant(GpuVariant::FastReduction)).unwrap();
        full.run().unwrap();
        let tiled_work = tiled.total_counters().update.elements;
        let full_work = full.total_counters().update.elements;
        assert!(
            tiled_work < full_work,
            "tiling should skip inactive tiles: {tiled_work} >= {full_work}"
        );
    }

    #[test]
    fn reduce_strategy_changes_atomic_counts() {
        let p = test_params(60);
        let mut tree =
            GpuSim::new(GpuSimConfig::new(p.clone(), 4).with_variant(GpuVariant::FastReduction))
                .unwrap();
        tree.run().unwrap();
        let mut atomic =
            GpuSim::new(GpuSimConfig::new(p, 4).with_variant(GpuVariant::Unoptimized)).unwrap();
        atomic.run().unwrap();
        assert!(
            tree.total_counters().reduce.atomics * 10 < atomic.total_counters().reduce.atomics,
            "tree reduction should slash atomics"
        );
        assert!(tree.total_counters().reduce.smem_ops > 0);
    }

    #[test]
    fn check_period_does_not_change_results_but_changes_cost() {
        let p = test_params(120);
        let run = |period: u64| {
            let cfg = GpuSimConfig::new(p.clone(), 4)
                .with_tile_side(8)
                .with_check_period(period);
            let mut sim = GpuSim::new(cfg).unwrap();
            sim.run().unwrap();
            (sim.gather_world(), sim.total_counters().tile_check.launches)
        };
        let (w1, checks1) = run(1);
        let (w8, checks8) = run(8);
        assert!(w1.first_difference(&w8).is_none(), "period changed results");
        assert!(
            checks1 > checks8 * 4,
            "shorter period must sweep more often: {checks1} vs {checks8}"
        );
    }

    #[test]
    fn check_period_beyond_tile_side_rejected() {
        let p = test_params(10);
        let cfg = GpuSimConfig::new(p, 4)
            .with_tile_side(4)
            .with_check_period(5); // unsafe: buffer can be outrun
        match GpuSim::new(cfg) {
            Err(ConfigError::CheckPeriodOutOfRange {
                check_period: 5,
                tile_side: 4,
            }) => {}
            other => panic!("expected CheckPeriodOutOfRange, got {:?}", other.err()),
        }
    }

    #[test]
    fn halo_traffic_recorded_with_locality() {
        let p = test_params(60);
        // 8 devices with 4 per node: both intra- and inter-node links exist.
        let mut sim = GpuSim::new(GpuSimConfig::new(p, 8)).unwrap();
        sim.run().unwrap();
        let total: LinkTraffic = sim.devices.iter().fold(LinkTraffic::default(), |mut a, d| {
            a.merge(&d.link);
            a
        });
        assert!(total.intra_msgs > 0);
        assert!(total.inter_msgs > 0);
        assert!(total.intra_bytes + total.inter_bytes > 0);
    }
}
