//! Memory tiling (§3.2, Fig. 3).
//!
//! A device's halo box is carved into fixed-size tiles; each tile's voxels
//! are stored contiguously (the zig-zag order of Fig. 3), which gives the
//! data locality the paper credits for faster updates *and* faster
//! reductions. Tiles are tracked active/inactive; kernels visit only active
//! tiles. A periodic check kernel (period ≤ tile side) sweeps the space,
//! reactivates tiles containing activity, and activates a one-tile-thick
//! buffer around them — safe because nothing in SIMCoV moves faster than
//! one voxel per step. Tiles containing ghost voxels are always active.

use simcov_core::grid::Coord;
use simcov_core::halo::HaloBox;

/// Tile-major storage layout over a halo box.
#[derive(Debug, Clone)]
pub struct TileLayout {
    pub hb: HaloBox,
    /// Tile side in voxels (x and y; z too for 3D boxes).
    pub tile: usize,
    tiles_x: usize,
    tiles_y: usize,
    tiles_z: usize,
    tile_volume: usize,
}

impl TileLayout {
    pub fn new(hb: HaloBox, tile: usize) -> Self {
        assert!(tile >= 1);
        let (sx, sy, sz) = hb.size();
        let tz = if sz == 1 { 1 } else { tile };
        TileLayout {
            hb,
            tile,
            tiles_x: sx.div_ceil(tile),
            tiles_y: sy.div_ceil(tile),
            tiles_z: sz.div_ceil(tz),
            tile_volume: tile * tile * tz,
        }
    }

    #[inline]
    fn tz(&self) -> usize {
        if self.hb.size().2 == 1 {
            1
        } else {
            self.tile
        }
    }

    /// Number of tiles.
    #[inline]
    pub fn n_tiles(&self) -> usize {
        self.tiles_x * self.tiles_y * self.tiles_z
    }

    /// Padded storage length (tiles × tile volume).
    #[inline]
    pub fn len(&self) -> usize {
        self.n_tiles() * self.tile_volume
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tile index containing a covered global coordinate.
    #[inline]
    pub fn tile_of(&self, c: Coord) -> usize {
        debug_assert!(self.hb.covers(c));
        let lx = (c.x - self.hb.lo.x) as usize / self.tile;
        let ly = (c.y - self.hb.lo.y) as usize / self.tile;
        let lz = (c.z - self.hb.lo.z) as usize / self.tz();
        (lz * self.tiles_y + ly) * self.tiles_x + lx
    }

    /// Storage index of a covered global coordinate: tile-major, row-major
    /// within the tile (the zig-zag order of Fig. 3).
    #[inline]
    pub fn local(&self, c: Coord) -> usize {
        debug_assert!(self.hb.covers(c), "{c:?} outside {:?}", self.hb);
        let x = (c.x - self.hb.lo.x) as usize;
        let y = (c.y - self.hb.lo.y) as usize;
        let z = (c.z - self.hb.lo.z) as usize;
        let tz = self.tz();
        let (tx, ox) = (x / self.tile, x % self.tile);
        let (ty, oy) = (y / self.tile, y % self.tile);
        let (tzi, oz) = (z / tz, z % tz);
        let tile_idx = (tzi * self.tiles_y + ty) * self.tiles_x + tx;
        tile_idx * self.tile_volume + (oz * self.tile + oy) * self.tile + ox
    }

    /// Global coordinate of a storage index (inverse of [`TileLayout::local`]).
    /// Must only be called for indices of real (non-padding) cells.
    #[inline]
    pub fn coord_of(&self, idx: usize) -> Coord {
        debug_assert!(idx < self.len());
        let tz = self.tz();
        let tile_idx = idx / self.tile_volume;
        let off = idx % self.tile_volume;
        let ox = off % self.tile;
        let oy = (off / self.tile) % self.tile;
        let oz = off / (self.tile * self.tile);
        let tx = tile_idx % self.tiles_x;
        let ty = (tile_idx / self.tiles_x) % self.tiles_y;
        let tzi = tile_idx / (self.tiles_x * self.tiles_y);
        Coord::new(
            self.hb.lo.x + (tx * self.tile + ox) as i64,
            self.hb.lo.y + (ty * self.tile + oy) as i64,
            self.hb.lo.z + (tzi * tz + oz) as i64,
        )
    }

    /// The valid (non-padded) extent of a tile: storage base, global
    /// origin, per-axis voxel counts and within-tile strides. Nested loops
    /// over a span visit exactly the cells [`TileLayout::tile_coords`]
    /// yields, in the same storage order, without the iterator-chain and
    /// per-cell division overhead — the blocked form the update kernels use.
    pub fn tile_span(&self, tile_idx: usize) -> TileSpan {
        let tx = tile_idx % self.tiles_x;
        let ty = (tile_idx / self.tiles_x) % self.tiles_y;
        let tzi = tile_idx / (self.tiles_x * self.tiles_y);
        let tz = self.tz();
        let (sx, sy, sz) = self.hb.size();
        let x0 = tx * self.tile;
        let y0 = ty * self.tile;
        let z0 = tzi * tz;
        TileSpan {
            base: tile_idx * self.tile_volume,
            origin: Coord::new(
                self.hb.lo.x + x0 as i64,
                self.hb.lo.y + y0 as i64,
                self.hb.lo.z + z0 as i64,
            ),
            nx: self.tile.min(sx - x0),
            ny: self.tile.min(sy - y0),
            nz: tz.min(sz - z0),
            sy_stride: self.tile,
            sz_stride: self.tile * self.tile,
        }
    }

    /// Iterate the in-box global coordinates of a tile together with their
    /// storage indices, in storage order. Padded cells are skipped.
    pub fn tile_coords(&self, tile_idx: usize) -> impl Iterator<Item = (usize, Coord)> + '_ {
        let tx = tile_idx % self.tiles_x;
        let ty = (tile_idx / self.tiles_x) % self.tiles_y;
        let tzi = tile_idx / (self.tiles_x * self.tiles_y);
        let tz = self.tz();
        let base = tile_idx * self.tile_volume;
        let (sx, sy, sz) = self.hb.size();
        (0..tz).flat_map(move |oz| {
            (0..self.tile).flat_map(move |oy| {
                (0..self.tile).filter_map(move |ox| {
                    let x = tx * self.tile + ox;
                    let y = ty * self.tile + oy;
                    let z = tzi * tz + oz;
                    if x < sx && y < sy && z < sz {
                        Some((
                            base + (oz * self.tile + oy) * self.tile + ox,
                            Coord::new(
                                self.hb.lo.x + x as i64,
                                self.hb.lo.y + y as i64,
                                self.hb.lo.z + z as i64,
                            ),
                        ))
                    } else {
                        None
                    }
                })
            })
        })
    }

    /// Chebyshev-adjacent tiles (the one-tile activation buffer).
    pub fn tile_neighbors(&self, tile_idx: usize) -> Vec<usize> {
        let tx = (tile_idx % self.tiles_x) as i64;
        let ty = ((tile_idx / self.tiles_x) % self.tiles_y) as i64;
        let tz = (tile_idx / (self.tiles_x * self.tiles_y)) as i64;
        let mut out = Vec::new();
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let (qx, qy, qz) = (tx + dx, ty + dy, tz + dz);
                    if qx >= 0
                        && qy >= 0
                        && qz >= 0
                        && (qx as usize) < self.tiles_x
                        && (qy as usize) < self.tiles_y
                        && (qz as usize) < self.tiles_z
                    {
                        out.push(
                            (qz as usize * self.tiles_y + qy as usize) * self.tiles_x + qx as usize,
                        );
                    }
                }
            }
        }
        out
    }

    /// Does this tile contain any ghost (non-core) voxel?
    pub fn contains_ghost(&self, tile_idx: usize) -> bool {
        self.tile_coords(tile_idx).any(|(_, c)| !self.hb.is_core(c))
    }
}

/// The valid (non-padded) extent of one tile (see [`TileLayout::tile_span`]).
///
/// The cell at tile offsets `(ox, oy, oz)` has storage index
/// `base + oz * sz_stride + oy * sy_stride + ox` and global coordinate
/// `origin + (ox, oy, oz)`; valid offsets are `ox < nx`, `oy < ny`,
/// `oz < nz`.
#[derive(Debug, Clone, Copy)]
pub struct TileSpan {
    pub base: usize,
    pub origin: Coord,
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub sy_stride: usize,
    pub sz_stride: usize,
}

/// Active-tile tracking with the periodic check schedule.
#[derive(Debug, Clone)]
pub struct TileTracker {
    pub active: Vec<bool>,
    always_active: Vec<bool>,
    /// Steps between activity sweeps; must be ≤ tile side.
    pub check_period: u64,
}

impl TileTracker {
    /// Build a tracker; ghost-containing tiles are permanently active.
    pub fn new(layout: &TileLayout, check_period: u64) -> Self {
        assert!(
            check_period >= 1 && check_period <= layout.tile as u64,
            "check period {} must be in [1, tile side {}]",
            check_period,
            layout.tile
        );
        let always: Vec<bool> = (0..layout.n_tiles())
            .map(|t| layout.contains_ghost(t))
            .collect();
        TileTracker {
            active: always.clone(),
            always_active: always,
            check_period,
        }
    }

    /// Is a check due at this step? (Step 0 always checks to capture the
    /// initial condition.)
    #[inline]
    pub fn check_due(&self, step: u64) -> bool {
        step.is_multiple_of(self.check_period)
    }

    /// Apply sweep results: `found[t]` says tile `t` contains activity.
    /// Activates found tiles plus a one-tile buffer, plus permanent tiles.
    pub fn apply_check(&mut self, layout: &TileLayout, found: &[bool]) {
        assert_eq!(found.len(), layout.n_tiles());
        for a in self.active.iter_mut() {
            *a = false;
        }
        for (t, &f) in found.iter().enumerate() {
            if f {
                self.active[t] = true;
                for n in layout.tile_neighbors(t) {
                    self.active[n] = true;
                }
            }
        }
        for (t, &a) in self.always_active.iter().enumerate() {
            if a {
                self.active[t] = true;
            }
        }
    }

    pub fn n_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Indices of active tiles in order (the kernel's block list).
    pub fn active_tiles(&self) -> impl Iterator<Item = usize> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcov_core::decomp::{Partition, Strategy};
    use simcov_core::grid::GridDims;

    fn layout_2d(grid: u32, ranks: usize, rank: usize, tile: usize) -> TileLayout {
        let dims = GridDims::new2d(grid, grid);
        let p = Partition::new(dims, ranks, Strategy::Blocks);
        TileLayout::new(HaloBox::new(dims, *p.sub(rank)), tile)
    }

    #[test]
    fn local_indices_unique_and_in_range() {
        let l = layout_2d(16, 4, 0, 3);
        let mut seen = std::collections::HashSet::new();
        let (sx, sy, _) = l.hb.size();
        for y in 0..sy {
            for x in 0..sx {
                let c = Coord::new(l.hb.lo.x + x as i64, l.hb.lo.y + y as i64, 0);
                let idx = l.local(c);
                assert!(idx < l.len());
                assert!(seen.insert(idx), "duplicate index {idx} for {c:?}");
            }
        }
    }

    #[test]
    fn tile_coords_cover_box_exactly_once() {
        let l = layout_2d(16, 4, 1, 3);
        let mut seen = std::collections::HashSet::new();
        for t in 0..l.n_tiles() {
            for (idx, c) in l.tile_coords(t) {
                assert!(l.hb.covers(c));
                assert_eq!(l.local(c), idx);
                assert_eq!(l.tile_of(c), t);
                assert!(seen.insert(idx));
            }
        }
        let (sx, sy, sz) = l.hb.size();
        assert_eq!(seen.len(), sx * sy * sz);
    }

    #[test]
    fn tile_contiguity() {
        // Voxels of one tile occupy a contiguous index range (the locality
        // property the paper exploits).
        let l = layout_2d(32, 4, 0, 4);
        for t in 0..l.n_tiles() {
            let idxs: Vec<usize> = l.tile_coords(t).map(|(i, _)| i).collect();
            if idxs.is_empty() {
                continue;
            }
            let min = *idxs.iter().min().unwrap();
            let max = *idxs.iter().max().unwrap();
            assert!(min >= t * l.tile_volume);
            assert!(max < (t + 1) * l.tile_volume);
        }
    }

    #[test]
    fn ghost_tiles_always_active() {
        let l = layout_2d(32, 4, 0, 4);
        let tracker = TileTracker::new(&l, 4);
        // Some tiles must be permanently active (the box has a ghost ring).
        assert!(tracker.n_active() > 0);
        for t in tracker.active_tiles() {
            assert!(l.contains_ghost(t));
        }
    }

    #[test]
    fn apply_check_dilates_by_one_tile() {
        let l = layout_2d(33, 1, 0, 5);
        let mut tracker = TileTracker::new(&l, 5);
        let mut found = vec![false; l.n_tiles()];
        // Activate a single interior tile.
        let interior = (0..l.n_tiles())
            .find(|&t| !l.contains_ghost(t) && l.tile_neighbors(t).len() == 8)
            .expect("interior tile");
        found[interior] = true;
        tracker.apply_check(&l, &found);
        assert!(tracker.active[interior]);
        for n in l.tile_neighbors(interior) {
            assert!(tracker.active[n], "buffer tile {n} must be active");
        }
        // Re-checking with no activity deactivates all but permanent tiles.
        tracker.apply_check(&l, &vec![false; l.n_tiles()]);
        assert!(!tracker.active[interior]);
    }

    #[test]
    #[should_panic]
    fn check_period_cannot_exceed_tile_side() {
        let l = layout_2d(16, 1, 0, 4);
        TileTracker::new(&l, 5);
    }

    #[test]
    fn layout_3d() {
        let dims = GridDims::new3d(12, 12, 12);
        let p = Partition::new(dims, 8, Strategy::Blocks);
        let l = TileLayout::new(HaloBox::new(dims, *p.sub(0)), 4);
        let mut seen = std::collections::HashSet::new();
        for t in 0..l.n_tiles() {
            for (idx, c) in l.tile_coords(t) {
                assert_eq!(l.local(c), idx);
                assert!(seen.insert(idx));
            }
        }
        let (sx, sy, sz) = l.hb.size();
        assert_eq!(seen.len(), sx * sy * sz);
        assert_eq!((sx, sy, sz), (8, 8, 8));
    }

    #[test]
    fn coord_of_inverts_local() {
        for (grid, ranks, rank, tile) in [(16u32, 4usize, 0usize, 3usize), (33, 1, 0, 5)] {
            let l = layout_2d(grid, ranks, rank, tile);
            for t in 0..l.n_tiles() {
                for (idx, c) in l.tile_coords(t) {
                    assert_eq!(l.coord_of(idx), c);
                }
            }
        }
        // 3D.
        let dims = GridDims::new3d(10, 10, 10);
        let p = Partition::new(dims, 2, Strategy::Blocks);
        let l = TileLayout::new(HaloBox::new(dims, *p.sub(0)), 3);
        for t in 0..l.n_tiles() {
            for (idx, c) in l.tile_coords(t) {
                assert_eq!(l.coord_of(idx), c);
            }
        }
    }

    #[test]
    fn tile_span_matches_tile_coords() {
        // The blocked loop form must visit exactly the same (index, coord)
        // sequence as the iterator form, including on edge tiles with
        // padding and in 3D.
        let mut layouts = vec![layout_2d(16, 4, 0, 3), layout_2d(33, 1, 0, 5)];
        let dims = GridDims::new3d(10, 10, 10);
        let p = Partition::new(dims, 2, Strategy::Blocks);
        layouts.push(TileLayout::new(HaloBox::new(dims, *p.sub(0)), 3));
        for l in &layouts {
            for t in 0..l.n_tiles() {
                let span = l.tile_span(t);
                let mut from_span = Vec::new();
                for oz in 0..span.nz {
                    for oy in 0..span.ny {
                        let row = span.base + oz * span.sz_stride + oy * span.sy_stride;
                        for ox in 0..span.nx {
                            from_span.push((
                                row + ox,
                                span.origin.offset(ox as i64, oy as i64, oz as i64),
                            ));
                        }
                    }
                }
                let from_iter: Vec<_> = l.tile_coords(t).collect();
                assert_eq!(from_span, from_iter, "tile {t}");
            }
        }
    }

    #[test]
    fn check_due_schedule() {
        let l = layout_2d(16, 1, 0, 4);
        let t = TileTracker::new(&l, 4);
        assert!(t.check_due(0));
        assert!(!t.check_due(1));
        assert!(t.check_due(4));
        assert!(t.check_due(8));
    }
}
