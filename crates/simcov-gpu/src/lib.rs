//! # simcov-gpu — the multinode, multi-device SIMCoV-GPU implementation
//!
//! The paper's primary contribution (§3), built on the `gpusim` simulated
//! device substrate and the `pgas` runtime:
//!
//! * **Bid-based T-cell algorithm** (§3.1, Fig. 2): every T cell chooses a
//!   target and a 64-bit random bid; bids are stored at the target voxel,
//!   one halo wave max-merges the contributions of all devices holding the
//!   voxel, and every device independently resolves the same winner — no
//!   second communication wave.
//! * **Memory tiling** (§3.2, Fig. 3): tile-major storage with active-tile
//!   tracking, a periodic sweep (period ≤ tile side) and a one-tile
//!   activation buffer; tiles containing ghost voxels are always active.
//! * **Fast reduction** (§3.3): per-step statistics via a shared-memory
//!   tree reduction with one global atomic per block per lane, replacing
//!   per-element atomics.
//!
//! The four §3.4 profiling variants ([`GpuVariant`]) toggle the two
//! optimizations independently; all four produce **bitwise identical**
//! simulation trajectories (only the metered cost differs), and all match
//! the serial reference and the CPU baseline exactly.

pub mod device;
pub mod msg;
pub mod sim;
pub mod tiles;
pub mod variants;

pub use device::GpuDevice;
pub use msg::{BidCell, GpuMsg, HaloCell};
pub use sim::{GpuSim, GpuSimConfig};
pub use tiles::{TileLayout, TileTracker};
pub use variants::GpuVariant;
