//! The four optimization variants profiled in §3.4 / Fig. 4.

/// Which GPU optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuVariant {
    /// Full-space iteration every step; statistics via per-element atomics
    /// interleaved with the update kernels.
    Unoptimized,
    /// Full-space iteration; shared-memory tree reduction (§3.3).
    FastReduction,
    /// Active-tile iteration (§3.2); atomic statistics.
    MemoryTiling,
    /// Both optimizations — the shipping configuration.
    Combined,
}

impl GpuVariant {
    pub const ALL: [GpuVariant; 4] = [
        GpuVariant::Unoptimized,
        GpuVariant::FastReduction,
        GpuVariant::MemoryTiling,
        GpuVariant::Combined,
    ];

    /// Does this variant skip inactive tiles?
    pub fn tiling(self) -> bool {
        matches!(self, GpuVariant::MemoryTiling | GpuVariant::Combined)
    }

    /// Does this variant use the tree reduction?
    pub fn tree_reduce(self) -> bool {
        matches!(self, GpuVariant::FastReduction | GpuVariant::Combined)
    }

    pub const fn name(self) -> &'static str {
        match self {
            GpuVariant::Unoptimized => "Unoptimized",
            GpuVariant::FastReduction => "Fast Reduction",
            GpuVariant::MemoryTiling => "Memory Tiling",
            GpuVariant::Combined => "Combined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix() {
        assert!(!GpuVariant::Unoptimized.tiling());
        assert!(!GpuVariant::Unoptimized.tree_reduce());
        assert!(!GpuVariant::FastReduction.tiling());
        assert!(GpuVariant::FastReduction.tree_reduce());
        assert!(GpuVariant::MemoryTiling.tiling());
        assert!(!GpuVariant::MemoryTiling.tree_reduce());
        assert!(GpuVariant::Combined.tiling());
        assert!(GpuVariant::Combined.tree_reduce());
        assert_eq!(GpuVariant::ALL.len(), 4);
    }
}
