//! Job types of the sweep server: the submitted [`JobSpec`], the completed
//! [`JobReport`], and the [`DeadLetter`] a terminally failed job leaves
//! behind.

use gpusim::metrics::StepRecord;
use pgas::fault::{IntegrityRecord, RecoveryRecord};
use pgas::CommCounters;
use simcov_core::json::Json;
use simcov_core::stats::TimeSeries;
use simcov_core::world::World;
use simcov_driver::{
    replay, CheckpointStats, DriverState, Event, IntegrityStats, Replay, SimError,
};

use crate::spec::RunSpec;

/// One unit of work submitted to the sweep server.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique name within the sweep; keys the job's artifacts
    /// (`<name>.jsonl`, `<name>.csv`, checkpoint, DLQ entry).
    pub name: String,
    /// The run to execute.
    pub run: RunSpec,
    /// Steps between durable checkpoints (0: no durable persistence, the
    /// job cannot resume after a server crash).
    pub persist_every: u64,
    /// Capture the final assembled world in the report (sweeps comparing
    /// per-voxel state set this; large grids should leave it off).
    pub capture_world: bool,
    /// Simulated mid-run crash: stop before computing this step and report
    /// [`JobStatus::Interrupted`], leaving only the durable checkpoints
    /// behind — exactly what a killed server leaves. Ignored when the job
    /// starts from a resume (the second run must finish).
    pub halt_after: Option<u64>,
}

impl JobSpec {
    pub fn new(name: impl Into<String>, run: RunSpec) -> Self {
        JobSpec {
            name: name.into(),
            run,
            persist_every: 0,
            capture_world: false,
            halt_after: None,
        }
    }

    pub fn with_persist_every(mut self, steps: u64) -> Self {
        self.persist_every = steps;
        self
    }

    pub fn with_capture_world(mut self) -> Self {
        self.capture_world = true;
        self
    }

    pub fn with_halt_after(mut self, step: u64) -> Self {
        self.halt_after = Some(step);
        self
    }

    /// Serialize to the submission schema (the `jobs` array of a sweep
    /// file). Round-trips through [`JobSpec::from_json`].
    pub fn to_json(&self) -> Json {
        let mut doc = Json::Obj(Vec::new());
        doc.push("name", self.name.as_str());
        doc.push("run", self.run.to_json());
        if self.persist_every > 0 {
            doc.push("persist_every", self.persist_every);
        }
        if self.capture_world {
            doc.push("capture_world", true);
        }
        if let Some(h) = self.halt_after {
            doc.push("halt_after", h);
        }
        doc
    }

    /// Parse one job of a sweep file; errors are typed via
    /// [`RunSpec::from_json`].
    pub fn from_json(doc: &Json) -> Result<Self, simcov_driver::ConfigError> {
        let name = doc
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| {
                simcov_driver::ConfigError::InvalidParams(
                    "JobSpec: missing required string field \"name\"".into(),
                )
            })?
            .to_string();
        let run = match doc.get("run") {
            Some(r) => RunSpec::from_json(r)?,
            None => RunSpec::from_json(doc)?,
        };
        let mut spec = JobSpec::new(name, run);
        if let Some(v) = doc.get("persist_every").and_then(|v| v.as_f64()) {
            spec.persist_every = v as u64;
        }
        if doc
            .get("capture_world")
            .is_some_and(|v| matches!(v, Json::Bool(true)))
        {
            spec.capture_world = true;
        }
        spec.halt_after = doc
            .get("halt_after")
            .and_then(|v| v.as_f64())
            .map(|v| v as u64);
        Ok(spec)
    }
}

/// Everything a finished job reports back, read without downcasting.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Per-step model statistics (the full trajectory, including steps
    /// computed before a resume — restored from the durable checkpoint).
    pub history: TimeSeries,
    /// Final assembled world (only with [`JobSpec::capture_world`]).
    pub world: Option<World>,
    /// Every fault recovery performed, in order.
    pub recoveries: Vec<RecoveryRecord>,
    /// Every integrity event detected, in order.
    pub integrity: Vec<IntegrityRecord>,
    /// Per-step records streamed by the driver.
    pub steps: Vec<StepRecord>,
    /// Cumulative communication counters.
    pub comm: CommCounters,
    /// Execution units still alive at the end (shrinks on rank death).
    pub survivors: usize,
    /// In-memory checkpoint store counters.
    pub checkpoints: CheckpointStats,
    /// SDC defense counters.
    pub integrity_stats: IntegrityStats,
    /// Step the job resumed from (None: ran start-to-finish).
    pub resumed_from: Option<u64>,
    /// Wall-clock seconds this server spent on the job (excludes any
    /// pre-crash run).
    pub wall_seconds: f64,
}

/// A job that terminally failed — the recovery ladder was exhausted, an
/// integrity violation could not be healed, or the failure hit before any
/// checkpoint existed. Carries the recorded control-plane event log so the
/// failure can be re-derived offline, without the executor or filesystem.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The submitted job.
    pub spec: JobSpec,
    /// Human-readable rendering of the terminal [`SimError`].
    pub error: String,
    /// Control state recording started from (the replay starting point).
    pub initial_state: DriverState,
    /// Every control-plane event up to and including the fatal decision.
    pub events: Vec<Event>,
}

impl DeadLetter {
    pub fn new(
        spec: JobSpec,
        error: &SimError,
        initial_state: DriverState,
        events: Vec<Event>,
    ) -> Self {
        DeadLetter {
            spec,
            error: error.to_string(),
            initial_state,
            events,
        }
    }

    /// Re-derive the failure from the recorded log through the pure core —
    /// no executor, no filesystem. `Replay::halt` holds the terminal stop
    /// cause; the trajectory shows every control decision leading to it.
    pub fn replay(&self) -> Replay {
        replay(self.initial_state.clone(), &self.events)
    }

    /// The DLQ file entry: enough to identify, triage, and re-submit the
    /// job. The typed event log stays in memory (it is not meaningfully
    /// JSON-stable); the entry records its size and the replayed verdict.
    pub fn to_json(&self) -> Json {
        let rep = self.replay();
        let mut doc = Json::Obj(Vec::new());
        doc.push("record", "dead_letter");
        doc.push("job", self.spec.name.as_str());
        doc.push("error", self.error.as_str());
        doc.push("events", self.events.len() as u64);
        doc.push(
            "replay_halt",
            rep.halt.map(|c| format!("{c:?}")).unwrap_or_default(),
        );
        doc.push("spec", self.spec.to_json());
        doc
    }
}

/// Terminal status of one submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Ran to the configured step count.
    Completed(Box<JobReport>),
    /// Stopped at a simulated crash point ([`JobSpec::halt_after`]); durable
    /// checkpoints (if configured) are on disk for a later resume.
    Interrupted {
        /// The step the job stopped before computing.
        at_step: u64,
    },
    /// A completed artifact from a previous run was found on disk and the
    /// job was not re-run (the resume path for jobs that finished before a
    /// server crash).
    Skipped,
    /// Terminally failed; the full context is in the dead-letter queue.
    Dead(Box<DeadLetter>),
}

impl JobStatus {
    pub fn is_completed(&self) -> bool {
        matches!(self, JobStatus::Completed(_))
    }

    pub fn is_dead(&self) -> bool {
        matches!(self, JobStatus::Dead(_))
    }

    /// The report of a completed job.
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            JobStatus::Completed(r) => Some(r),
            _ => None,
        }
    }
}
