//! `simcov-sweep` — scenario-sweep job server over the unified simulation
//! driver.
//!
//! The crate turns the single-run [`Simulation`](simcov_driver::Simulation)
//! driver into a batch service:
//!
//! - [`RunSpec`] is the one validated, JSON-round-trippable description of a
//!   run — executor choice, model parameters, decomposition, fault plan and
//!   recovery policy — replacing per-executor builder chains at submission
//!   boundaries.
//! - [`JobSpec`] wraps a [`RunSpec`] with a name and durability knobs and is
//!   what a sweep submits.
//! - [`SweepServer`] schedules jobs across a work-stealing worker pool,
//!   streams each job's step/recovery/integrity records as JSON lines,
//!   persists durable checkpoints, resumes interrupted jobs bit-identically,
//!   and parks terminally failed jobs in a dead-letter queue with their
//!   recorded control-plane event log ([`DeadLetter::replay`] re-derives the
//!   failure offline).
//!
//! See the [`server`] module docs for the artifact layout, resume protocol
//! and DLQ semantics.

pub mod job;
pub mod server;
pub mod spec;

pub use job::{DeadLetter, JobReport, JobSpec, JobStatus};
pub use server::{job_paths, SweepConfig, SweepServer};
pub use spec::{ExecutorKind, FaultSpec, ParamPreset, RecoverySpec, RunSpec};
