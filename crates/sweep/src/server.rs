//! The sweep job server: a multi-tenant batch scheduler over the unified
//! [`Simulation`](simcov_driver::Simulation) driver.
//!
//! Jobs arrive as typed [`JobSpec`]s and are scheduled across a
//! work-stealing worker pool: each worker owns a deque, submissions are
//! dealt round-robin, an idle worker pops its own deque from the front and
//! steals from a victim's back. Every job's *intra-step* parallelism runs
//! on one shared [`WorkPool`] (dynamic self-claiming interleaves items from
//! concurrent jobs), so a sweep saturates the host without oversubscribing
//! it with a thread pool per job.
//!
//! ## Artifacts
//!
//! Under the output directory, per job `<name>`:
//! - `<name>.jsonl` — streamed records, one JSON object per line:
//!   `{"record":"job"...}` header, then `step` / `recovery` / `integrity`
//!   lines as the run produces them.
//! - `<name>.csv` — the final trajectory in the `simcov` CSV schema,
//!   written only on completion.
//! - `<name>.done` — completion marker (resume skips finished jobs).
//! - `ckpt/<name>.ck` — durable checkpoint, refreshed every
//!   [`JobSpec::persist_every`] steps.
//! - `dlq/<name>.json` — dead-letter entry for terminally failed jobs.
//!
//! ## Resume protocol
//!
//! Re-submitting the same sweep after a crash: jobs with a `.done` marker
//! are skipped; jobs with a durable checkpoint restore it and continue
//! (the restored history covers the pre-crash steps, so the final CSV is
//! byte-identical to an uninterrupted run — the determinism invariant);
//! jobs with neither start over. Stale checkpoint stagings left by a crash
//! mid-persist are swept before the first load.
//!
//! ## Dead-letter queue
//!
//! A job whose recovery ladder is exhausted (or that hits an unhealable
//! integrity violation, or fails before any checkpoint exists) lands in
//! the DLQ with its recorded control-plane event log: [`DeadLetter::replay`]
//! folds the log through the pure [`simcov_driver::DriverState`] core to
//! re-derive the terminal decision offline — no executor, no filesystem.

use std::collections::VecDeque;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use gpusim::metrics::StepRecord;
use pgas::WorkPool;
use simcov_core::json::Json;
use simcov_core::stats::TimeSeries;
use simcov_driver::{
    load_checkpoint, persist_checkpoint, sweep_stale_stages, DriverState, SimError,
};
use simcov_telemetry::{Registry, SharedSink};

use crate::job::{DeadLetter, JobReport, JobSpec, JobStatus};

/// Server configuration: worker count, shared-pool size, artifact roots.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Concurrent jobs (worker threads). 0 is clamped to 1.
    pub workers: usize,
    /// Threads of the shared intra-step [`WorkPool`] (0: inline).
    pub pool_threads: usize,
    /// Root for streamed records, CSVs, done markers and the DLQ.
    pub out_dir: PathBuf,
    /// Durable checkpoint directory (defaults to `out_dir/ckpt`).
    pub ckpt_dir: PathBuf,
}

impl SweepConfig {
    /// Two job workers over an inline pool, rooted at `out_dir`.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        let out_dir = out_dir.into();
        let ckpt_dir = out_dir.join("ckpt");
        SweepConfig {
            workers: 2,
            pool_threads: 0,
            out_dir,
            ckpt_dir,
        }
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub fn with_pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = threads;
        self
    }
}

struct State {
    /// Per-worker job deques (owner pops front, thieves pop back).
    decks: Vec<VecDeque<JobSpec>>,
    /// Jobs submitted and not yet finished.
    pending: usize,
    /// Terminal statuses, in completion order.
    results: Vec<(String, JobStatus)>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    job_ready: Condvar,
    idle: Condvar,
    pool: Arc<WorkPool>,
    out_dir: PathBuf,
    ckpt_dir: PathBuf,
    /// Round-robin dealing cursor for submissions.
    next_deck: AtomicUsize,
}

/// The sweep job server. Submit [`JobSpec`]s, wait, read statuses; drop (or
/// [`SweepServer::join`]) to stop the workers.
pub struct SweepServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SweepServer {
    /// Create artifact directories and start the worker threads.
    pub fn start(cfg: SweepConfig) -> std::io::Result<Self> {
        fs::create_dir_all(&cfg.out_dir)?;
        fs::create_dir_all(&cfg.ckpt_dir)?;
        fs::create_dir_all(cfg.out_dir.join("dlq"))?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                decks: (0..workers).map(|_| VecDeque::new()).collect(),
                pending: 0,
                results: Vec::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
            pool: Arc::new(WorkPool::new(cfg.pool_threads)),
            out_dir: cfg.out_dir,
            ckpt_dir: cfg.ckpt_dir,
            next_deck: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(sh, w))
            })
            .collect();
        Ok(SweepServer {
            shared,
            workers: handles,
        })
    }

    /// Queue one job (dealt round-robin across worker deques; an idle
    /// worker steals it regardless of which deque it landed on).
    pub fn submit(&self, job: JobSpec) {
        let mut st = lock(&self.shared.state);
        let n = st.decks.len();
        let deck = self.shared.next_deck.fetch_add(1, Ordering::Relaxed) % n;
        st.decks[deck].push_back(job);
        st.pending += 1;
        drop(st);
        self.shared.job_ready.notify_all();
    }

    /// Queue a batch of jobs.
    pub fn submit_all(&self, jobs: impl IntoIterator<Item = JobSpec>) {
        for j in jobs {
            self.submit(j);
        }
    }

    /// Block until every submitted job has reached a terminal status.
    pub fn wait_idle(&self) {
        let mut st = lock(&self.shared.state);
        while st.pending != 0 {
            st = self.shared.idle.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Snapshot of terminal statuses so far, in completion order.
    pub fn results(&self) -> Vec<(String, JobStatus)> {
        lock(&self.shared.state).results.clone()
    }

    /// The dead-letter queue: every terminally failed job so far.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        lock(&self.shared.state)
            .results
            .iter()
            .filter_map(|(_, s)| match s {
                JobStatus::Dead(dl) => Some((**dl).clone()),
                _ => None,
            })
            .collect()
    }

    /// The shared intra-step pool (jobs submitted through this server run
    /// their supersteps on it).
    pub fn pool(&self) -> Arc<WorkPool> {
        Arc::clone(&self.shared.pool)
    }

    /// Wait for all work, stop the workers, and return every terminal
    /// status in completion order.
    pub fn join(mut self) -> Vec<(String, JobStatus)> {
        self.wait_idle();
        self.stop_workers();
        lock(&self.shared.state).results.clone()
    }

    fn stop_workers(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SweepServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(sh: Arc<Shared>, me: usize) {
    loop {
        let job = {
            let mut st = lock(&sh.state);
            loop {
                if let Some(job) = st.decks[me].pop_front() {
                    break Some(job);
                }
                let n = st.decks.len();
                let stolen = (1..n)
                    .map(|k| (me + k) % n)
                    .find_map(|v| st.decks[v].pop_back());
                if let Some(job) = stolen {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = sh.job_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(spec) = job else { return };
        let name = spec.name.clone();
        let status = run_job(&sh, spec);
        let mut st = lock(&sh.state);
        st.results.push((name, status));
        st.pending -= 1;
        if st.pending == 0 {
            sh.idle.notify_all();
        }
        drop(st);
    }
}

/// Replace path-hostile characters so a job name is safe as a file stem.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render one streamed step record as a JSON line object.
fn step_line(rec: &StepRecord) -> Json {
    let mut doc = Json::Obj(Vec::new());
    doc.push("record", "step");
    doc.push("step", rec.step);
    doc.push("virions", rec.virions);
    doc.push("chemokine", rec.chemokine);
    doc.push("agents", rec.agents);
    doc.push("active_units", rec.active_units);
    doc.push("comm_messages", rec.comm_messages);
    doc.push("comm_bytes", rec.comm_bytes);
    doc.push("sim_seconds", rec.sim_seconds);
    doc
}

fn recovery_line(r: &pgas::fault::RecoveryRecord) -> Json {
    let mut doc = Json::Obj(Vec::new());
    doc.push("record", "recovery");
    doc.push("failed_step", r.failed_step);
    doc.push("superstep", r.superstep);
    doc.push(
        "dead_ranks",
        r.dead_ranks.iter().map(|&d| d as u64).collect::<Vec<_>>(),
    );
    doc.push("dropped_messages", r.dropped_messages);
    doc.push("rollback_step", r.rollback_step);
    doc.push("replayed_steps", r.replayed_steps);
    doc.push("survivors", r.survivors as u64);
    doc.push("attempt", r.attempt);
    doc.push("backoff_ns", r.backoff_ns);
    doc
}

fn integrity_line(r: &pgas::fault::IntegrityRecord) -> Json {
    let mut doc = Json::Obj(Vec::new());
    doc.push("record", "integrity");
    doc.push("step", r.step);
    doc.push("injected_step", r.injected_step);
    doc.push("superstep", r.superstep);
    doc.push("injected_superstep", r.injected_superstep);
    doc.push("kind", format!("{:?}", r.kind));
    doc.push("detector", format!("{:?}", r.detector));
    doc.push("action", format!("{:?}", r.action));
    doc
}

/// Append one JSON object as a line (compact: the pretty renderer is for
/// documents; a record stream wants one object per line).
fn write_line(out: &mut fs::File, doc: &Json) -> std::io::Result<()> {
    writeln!(out, "{}", doc.render_compact())
}

/// The `simcov` CSV schema (kept byte-compatible with the CLI's writer —
/// the crash-restart gates compare these files with `cmp`).
fn history_csv(h: &TimeSeries) -> String {
    let mut out = String::from(
        "step,virions,chemokine,tcells_vasculature,tcells_tissue,\
         epi_healthy,epi_incubating,epi_expressing,epi_apoptotic,epi_dead,extravasated\n",
    );
    for s in &h.steps {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            s.step,
            s.virions,
            s.chemokine,
            s.tcells_vasculature,
            s.tcells_tissue,
            s.epi_healthy,
            s.epi_incubating,
            s.epi_expressing,
            s.epi_apoptotic,
            s.epi_dead,
            s.extravasated
        ));
    }
    out
}

/// Write the DLQ entry and wrap the letter in a terminal status.
fn dead(sh: &Shared, letter: DeadLetter) -> JobStatus {
    let path = sh
        .out_dir
        .join("dlq")
        .join(format!("{}.json", sanitize(&letter.spec.name)));
    let _ = fs::write(&path, letter.to_json().render());
    JobStatus::Dead(Box::new(letter))
}

/// Execute one job start-to-terminal-status on the calling worker thread.
fn run_job(sh: &Shared, spec: JobSpec) -> JobStatus {
    let t0 = Instant::now();
    let stem = sanitize(&spec.name);
    let csv_path = sh.out_dir.join(format!("{stem}.csv"));
    let jsonl_path = sh.out_dir.join(format!("{stem}.jsonl"));
    let done_path = sh.out_dir.join(format!("{stem}.done"));
    let ck_path = sh.ckpt_dir.join(format!("{stem}.ck"));

    if done_path.exists() && csv_path.exists() {
        return JobStatus::Skipped;
    }

    let params = spec.run.params();
    let mut sim = match spec.run.build_with_pool(Arc::clone(&sh.pool)) {
        Ok(sim) => sim,
        Err(e) => {
            let err = SimError::Config(e);
            let letter =
                DeadLetter::new(spec, &err, DriverState::initial(1, None, false), Vec::new());
            return dead(sh, letter);
        }
    };
    sim.enable_event_recording();
    let sink: SharedSink<StepRecord> = SharedSink::new();
    sim.set_metrics_sink(Box::new(sink.clone()));

    // Per-job metric series on the process registry, scoped by job label.
    let scoped = Registry::global().scoped(&[("job", &spec.name)]);
    let steps_ctr = scoped.counter("sweep_job_steps_total", "Steps computed by the job");
    let recov_ctr = scoped.counter(
        "sweep_job_recoveries_total",
        "Fault recoveries performed by the job",
    );
    let integ_ctr = scoped.counter(
        "sweep_job_integrity_events_total",
        "Integrity events detected by the job",
    );
    let wall_g = scoped.gauge(
        "sweep_job_wall_seconds",
        "Wall-clock seconds spent on the job",
    );

    // Resume from a durable checkpoint left by an interrupted run.
    let mut resumed_from = None;
    if spec.persist_every > 0 {
        sweep_stale_stages(&ck_path);
        if ck_path.exists() {
            match load_checkpoint(&ck_path, &params) {
                Ok(cp) => match sim.restore(&cp) {
                    Ok(()) => resumed_from = Some(cp.step),
                    Err(e) => {
                        let letter = DeadLetter::new(
                            spec,
                            &e,
                            sim.replay_initial_state()
                                .cloned()
                                .unwrap_or_else(|| DriverState::initial(1, None, false)),
                            sim.event_log().to_vec(),
                        );
                        return dead(sh, letter);
                    }
                },
                // Unreadable durable checkpoint: recompute from scratch
                // rather than failing the job (the run is deterministic).
                Err(_) => {
                    let _ = fs::remove_file(&ck_path);
                }
            }
        }
    }

    let mut stream = match fs::OpenOptions::new()
        .create(true)
        .append(resumed_from.is_some())
        .truncate(resumed_from.is_none())
        .write(true)
        .open(&jsonl_path)
    {
        Ok(f) => f,
        Err(e) => {
            let err = SimError::Persist(format!("open {}: {e}", jsonl_path.display()));
            let letter =
                DeadLetter::new(spec, &err, DriverState::initial(1, None, false), Vec::new());
            return dead(sh, letter);
        }
    };
    let mut header = Json::Obj(Vec::new());
    header.push("record", "job");
    header.push("job", spec.name.as_str());
    header.push("executor", spec.run.executor.name());
    header.push("steps", params.steps);
    match resumed_from {
        Some(s) => header.push("resumed_from", s),
        None => header.push("resumed_from", Json::Null),
    }
    let _ = write_line(&mut stream, &header);

    // The simulated crash is only honored on a fresh start: a resumed job
    // must run to completion (mirrors a real kill — the killed process is
    // gone; the resubmitted one finishes).
    let halt_at = if resumed_from.is_none() {
        spec.halt_after
    } else {
        None
    };

    let mut streamed: Vec<StepRecord> = Vec::new();
    while sim.step() < params.steps {
        if halt_at == Some(sim.step()) {
            return JobStatus::Interrupted {
                at_step: sim.step(),
            };
        }
        if let Err(e) = sim.advance_step() {
            let letter = DeadLetter::new(
                spec,
                &e,
                sim.replay_initial_state()
                    .cloned()
                    .unwrap_or_else(|| DriverState::initial(1, None, false)),
                sim.event_log().to_vec(),
            );
            return dead(sh, letter);
        }
        for rec in sink.take() {
            for r in &rec.recoveries {
                recov_ctr.inc();
                let _ = write_line(&mut stream, &recovery_line(r));
            }
            for r in &rec.integrity {
                integ_ctr.inc();
                let _ = write_line(&mut stream, &integrity_line(r));
            }
            steps_ctr.inc();
            let _ = write_line(&mut stream, &step_line(&rec));
            streamed.push(rec);
        }
        if spec.persist_every > 0 && sim.step() % spec.persist_every == 0 {
            let cp = sim.checkpoint();
            if let Err(e) = persist_checkpoint(&ck_path, &params, &cp) {
                let letter = DeadLetter::new(
                    spec,
                    &e,
                    sim.replay_initial_state()
                        .cloned()
                        .unwrap_or_else(|| DriverState::initial(1, None, false)),
                    sim.event_log().to_vec(),
                );
                return dead(sh, letter);
            }
        }
    }

    if let Err(e) = fs::write(&csv_path, history_csv(sim.history())) {
        let err = SimError::Persist(format!("write {}: {e}", csv_path.display()));
        let letter = DeadLetter::new(
            spec,
            &err,
            sim.replay_initial_state()
                .cloned()
                .unwrap_or_else(|| DriverState::initial(1, None, false)),
            sim.event_log().to_vec(),
        );
        return dead(sh, letter);
    }
    let _ = fs::write(&done_path, "done\n");
    let _ = fs::remove_file(&ck_path);

    let wall = t0.elapsed().as_secs_f64();
    wall_g.set(wall);
    let report = JobReport {
        history: sim.history().clone(),
        world: spec.capture_world.then(|| sim.gather_world()),
        recoveries: sim.recovery_log().to_vec(),
        integrity: sim.integrity_log().to_vec(),
        steps: streamed,
        comm: sim.comm_counters(),
        survivors: sim.n_units(),
        checkpoints: sim.checkpoint_stats(),
        integrity_stats: sim.integrity_stats(),
        resumed_from,
        wall_seconds: wall,
    };
    JobStatus::Completed(Box::new(report))
}

/// Artifact paths of a job under a server's output root (for callers that
/// inspect or compare the files a sweep produced).
pub fn job_paths(out_dir: &Path, name: &str) -> (PathBuf, PathBuf, PathBuf) {
    let stem = sanitize(name);
    (
        out_dir.join(format!("{stem}.csv")),
        out_dir.join(format!("{stem}.jsonl")),
        out_dir.join("dlq").join(format!("{stem}.json")),
    )
}
