//! [`RunSpec`]: the single validated, JSON-round-trippable description of
//! one simulation run.
//!
//! Before this type existed every embedder assembled runs through the
//! duplicated `with_*` builder surfaces on [`CpuSimConfig`] and
//! [`GpuSimConfig`] (and the serial driver had no config type at all). A
//! `RunSpec` is the one schema all three executors construct from — and
//! because it round-trips through [`simcov_core::json`], it doubles as the
//! job-submission wire format of the sweep server: the CLI, the server and
//! in-process embedders share one parse/validate path returning typed
//! [`ConfigError`]s.

use pgas::fault::{FaultPlan, FaultRates};
use pgas::WorkPool;
use simcov_core::decomp::Strategy;
use simcov_core::foi::FoiPattern;
use simcov_core::grid::GridDims;
use simcov_core::json::Json;
use simcov_core::params::SimParams;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::{ConfigError, RecoveryPolicy, SerialDriver, Simulation};
use simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};
use std::sync::Arc;

/// Which executor runs the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// Single-threaded reference executor (no fault surface).
    Serial,
    /// BSP rank executor.
    #[default]
    Cpu,
    /// Simulated multi-device GPU executor.
    Gpu,
}

impl ExecutorKind {
    /// Stable lowercase name, matching `Simulation::name`.
    pub fn name(self) -> &'static str {
        match self {
            ExecutorKind::Serial => "serial",
            ExecutorKind::Cpu => "cpu",
            ExecutorKind::Gpu => "gpu",
        }
    }

    fn parse(s: &str) -> Result<Self, ConfigError> {
        match s {
            "serial" => Ok(ExecutorKind::Serial),
            "cpu" => Ok(ExecutorKind::Cpu),
            "gpu" => Ok(ExecutorKind::Gpu),
            other => Err(ConfigError::InvalidParams(format!(
                "unknown executor {other:?} (serial|cpu|gpu)"
            ))),
        }
    }

    /// BSP supersteps per simulation step — the factor converting a step
    /// count into the fault-plan horizon for this executor.
    pub fn supersteps_per_step(self) -> u64 {
        match self {
            ExecutorKind::Serial => 0,
            ExecutorKind::Cpu => 3,
            ExecutorKind::Gpu => 2,
        }
    }
}

/// How the model parameters are derived from the spec's scalar knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParamPreset {
    /// Paper defaults ([`SimParams::default`]) with dims/steps/foci/seed
    /// overridden.
    #[default]
    Paper,
    /// Fast-dynamics test calibration ([`SimParams::test_config`]) — what
    /// the benches and sweeps run on small grids.
    Test,
}

impl ParamPreset {
    fn name(self) -> &'static str {
        match self {
            ParamPreset::Paper => "paper",
            ParamPreset::Test => "test",
        }
    }

    fn parse(s: &str) -> Result<Self, ConfigError> {
        match s {
            "paper" => Ok(ParamPreset::Paper),
            "test" => Ok(ParamPreset::Test),
            other => Err(ConfigError::InvalidParams(format!(
                "unknown preset {other:?} (paper|test)"
            ))),
        }
    }
}

/// Seeded fault-injection rates for a run — the serializable face of
/// [`FaultPlan::seeded`]. The horizon is derived from the executor's
/// superstep count, never stored.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Seed of the fault sampler (independent of the model seed).
    pub seed: u64,
    pub rates: FaultRates,
}

/// Serializable face of [`RecoveryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySpec {
    pub checkpoint_period: u64,
    pub max_retries: u32,
    pub backoff_base_ns: u64,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        let p = RecoveryPolicy::default();
        RecoverySpec {
            checkpoint_period: p.checkpoint_period,
            max_retries: p.max_retries,
            backoff_base_ns: p.backoff_base_ns,
        }
    }
}

impl RecoverySpec {
    fn policy(&self) -> RecoveryPolicy {
        RecoveryPolicy {
            checkpoint_period: self.checkpoint_period,
            max_retries: self.max_retries,
            backoff_base_ns: self.backoff_base_ns,
        }
    }
}

/// One validated description of a simulation run, buildable on any executor
/// and round-trippable through JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    pub executor: ExecutorKind,
    /// Execution units: ranks (cpu) or devices (gpu); ignored by serial.
    pub units: usize,
    pub dims: GridDims,
    pub steps: u64,
    /// Foci of infection seeded at t=0.
    pub num_foi: u32,
    /// Master model seed.
    pub seed: u64,
    pub preset: ParamPreset,
    pub strategy: Strategy,
    pub pattern: FoiPattern,
    // --- GPU-only knobs (ignored elsewhere) ---
    pub variant: GpuVariant,
    pub tile_side: usize,
    pub check_period: Option<u64>,
    pub devices_per_node: usize,
    // --- resilience ---
    pub fault: Option<FaultSpec>,
    pub recovery: Option<RecoverySpec>,
    pub audit_period: Option<u64>,
    pub retransmit_budget: Option<u64>,
}

impl RunSpec {
    /// A spec for `executor` on the test calibration — the shape every
    /// sweep cell uses.
    pub fn test(
        executor: ExecutorKind,
        dims: GridDims,
        steps: u64,
        num_foi: u32,
        seed: u64,
    ) -> Self {
        RunSpec {
            executor,
            units: 4,
            dims,
            steps,
            num_foi,
            seed,
            preset: ParamPreset::Test,
            strategy: Strategy::Blocks,
            pattern: FoiPattern::UniformLattice,
            variant: GpuVariant::Combined,
            tile_side: 8,
            check_period: None,
            devices_per_node: 4,
            fault: None,
            recovery: None,
            audit_period: None,
            retransmit_budget: None,
        }
    }

    pub fn with_units(mut self, units: usize) -> Self {
        self.units = units;
        self
    }

    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    pub fn with_recovery(mut self, recovery: RecoverySpec) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// The model parameters this spec resolves to.
    pub fn params(&self) -> SimParams {
        match self.preset {
            ParamPreset::Test => {
                SimParams::test_config(self.dims, self.steps, self.num_foi, self.seed)
            }
            ParamPreset::Paper => SimParams {
                dims: self.dims,
                steps: self.steps,
                num_foi: self.num_foi,
                seed: self.seed,
                ..SimParams::default()
            },
        }
    }

    /// The seeded fault plan this spec arms (empty when `fault` is unset).
    /// The horizon covers every superstep of the run on this executor.
    pub fn fault_plan(&self) -> FaultPlan {
        match &self.fault {
            None => FaultPlan::none(),
            Some(f) => FaultPlan::seeded(
                f.seed,
                &f.rates,
                self.units,
                self.steps * self.executor.supersteps_per_step(),
            ),
        }
    }

    /// Validate every knob without building anything, using the same typed
    /// errors construction would surface.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.params()
            .validate()
            .map_err(ConfigError::InvalidParams)?;
        match self.executor {
            ExecutorKind::Serial => Ok(()),
            ExecutorKind::Cpu => {
                if self.units == 0 {
                    return Err(ConfigError::ZeroUnits);
                }
                Ok(())
            }
            ExecutorKind::Gpu => {
                if self.units == 0 {
                    return Err(ConfigError::ZeroUnits);
                }
                self.to_gpu_config().validate()
            }
        }
    }

    /// The CPU executor's config for this spec (the consolidated
    /// replacement for chaining its `with_*` builders).
    pub fn to_cpu_config(&self) -> CpuSimConfig {
        CpuSimConfig {
            params: self.params(),
            n_ranks: self.units,
            strategy: self.strategy,
            pattern: self.pattern,
            fault_plan: self.fault_plan(),
            recovery: self.recovery.as_ref().map(|r| r.policy()),
            audit_period: self.audit_period,
            retransmit_budget: self.retransmit_budget,
            kernel: simcov_core::lanes::KernelMode::default(),
            threads: None,
            transport: pgas::TransportMode::InProcess,
        }
    }

    /// The GPU executor's config for this spec.
    pub fn to_gpu_config(&self) -> GpuSimConfig {
        GpuSimConfig {
            params: self.params(),
            n_devices: self.units,
            strategy: self.strategy,
            pattern: self.pattern,
            variant: self.variant,
            tile_side: self.tile_side,
            check_period: self.check_period,
            devices_per_node: self.devices_per_node,
            fault_plan: self.fault_plan(),
            recovery: self.recovery.as_ref().map(|r| r.policy()),
            audit_period: self.audit_period,
            retransmit_budget: self.retransmit_budget,
            kernel: simcov_core::lanes::KernelMode::default(),
            threads: None,
            transport: pgas::TransportMode::InProcess,
        }
    }

    /// Build the simulation behind the unified driver API.
    pub fn build(&self) -> Result<Box<dyn Simulation>, ConfigError> {
        match self.executor {
            ExecutorKind::Serial => Ok(Box::new(SerialDriver::with_pattern(
                self.params(),
                self.pattern,
            )?)),
            ExecutorKind::Cpu => Ok(Box::new(CpuSim::new(self.to_cpu_config())?)),
            ExecutorKind::Gpu => Ok(Box::new(GpuSim::new(self.to_gpu_config())?)),
        }
    }

    /// Build with intra-step parallelism pointed at a shared pool (the
    /// sweep server's path: many concurrent jobs, one pool).
    pub fn build_with_pool(&self, pool: Arc<WorkPool>) -> Result<Box<dyn Simulation>, ConfigError> {
        let mut sim = self.build()?;
        sim.share_pool(pool);
        Ok(sim)
    }

    /// Serialize to the submission schema. Optional knobs are omitted when
    /// unset, so documents stay minimal and defaults stay upgradeable.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::Obj(Vec::new());
        doc.push("executor", self.executor.name());
        doc.push("units", self.units as u64);
        doc.push(
            "dims",
            vec![self.dims.x as u64, self.dims.y as u64, self.dims.z as u64],
        );
        doc.push("steps", self.steps);
        doc.push("num_foi", self.num_foi);
        doc.push("seed", self.seed);
        doc.push("preset", self.preset.name());
        doc.push(
            "strategy",
            match self.strategy {
                Strategy::Linear => "linear",
                Strategy::Blocks => "blocks",
            },
        );
        match self.pattern {
            FoiPattern::UniformLattice => doc.push("pattern", "uniform"),
            FoiPattern::Random => doc.push("pattern", "random"),
            FoiPattern::CtLesions { clusters, radius } => {
                let mut p = Json::Obj(Vec::new());
                p.push("clusters", clusters);
                p.push("radius", radius);
                doc.push("ct_lesions", p);
            }
        }
        if self.executor == ExecutorKind::Gpu {
            doc.push(
                "variant",
                match self.variant {
                    GpuVariant::Unoptimized => "unoptimized",
                    GpuVariant::FastReduction => "fast_reduction",
                    GpuVariant::MemoryTiling => "memory_tiling",
                    GpuVariant::Combined => "combined",
                },
            );
            doc.push("tile_side", self.tile_side as u64);
            if let Some(p) = self.check_period {
                doc.push("check_period", p);
            }
            doc.push("devices_per_node", self.devices_per_node as u64);
        }
        if let Some(f) = &self.fault {
            let mut fj = Json::Obj(Vec::new());
            fj.push("seed", f.seed);
            fj.push("death", f.rates.death);
            fj.push("drop", f.rates.drop);
            fj.push("duplicate", f.rates.duplicate);
            fj.push("stall", f.rates.stall);
            fj.push("stall_ns", f.rates.stall_ns);
            fj.push("payload_corruption", f.rates.payload_corruption);
            fj.push("state_corruption", f.rates.state_corruption);
            doc.push("fault", fj);
        }
        if let Some(r) = &self.recovery {
            let mut rj = Json::Obj(Vec::new());
            rj.push("checkpoint_period", r.checkpoint_period);
            rj.push("max_retries", r.max_retries);
            rj.push("backoff_base_ns", r.backoff_base_ns);
            doc.push("recovery", rj);
        }
        if let Some(p) = self.audit_period {
            doc.push("audit_period", p);
        }
        if let Some(b) = self.retransmit_budget {
            doc.push("retransmit_budget", b);
        }
        doc
    }

    /// Parse (and validate) a submission document. Every malformed field is
    /// a typed [`ConfigError`] naming the field.
    pub fn from_json(doc: &Json) -> Result<Self, ConfigError> {
        let bad = |what: &str| ConfigError::InvalidParams(format!("RunSpec: {what}"));
        let str_field = |key: &str| -> Result<Option<&str>, ConfigError> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(Some)
                    .ok_or_else(|| bad(&format!("field {key:?} must be a string"))),
            }
        };
        let num_field = |key: &str| -> Result<Option<f64>, ConfigError> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| bad(&format!("field {key:?} must be a number"))),
            }
        };
        let req_num = |key: &str| -> Result<f64, ConfigError> {
            num_field(key)?.ok_or_else(|| bad(&format!("missing required field {key:?}")))
        };

        let executor = match str_field("executor")? {
            Some(s) => ExecutorKind::parse(s)?,
            None => ExecutorKind::default(),
        };
        let dims = match doc.get("dims").and_then(|d| d.as_arr()) {
            Some([x, y]) => GridDims::new2d(
                x.as_f64().ok_or_else(|| bad("dims[0] must be a number"))? as u32,
                y.as_f64().ok_or_else(|| bad("dims[1] must be a number"))? as u32,
            ),
            Some([x, y, z]) => GridDims {
                x: x.as_f64().ok_or_else(|| bad("dims[0] must be a number"))? as u32,
                y: y.as_f64().ok_or_else(|| bad("dims[1] must be a number"))? as u32,
                z: z.as_f64().ok_or_else(|| bad("dims[2] must be a number"))? as u32,
            },
            _ => return Err(bad("field \"dims\" must be [x, y] or [x, y, z]")),
        };
        let mut spec = RunSpec::test(
            executor,
            dims,
            req_num("steps")? as u64,
            req_num("num_foi")? as u32,
            num_field("seed")?.unwrap_or(0.0) as u64,
        );
        spec.units = num_field("units")?.map(|v| v as usize).unwrap_or(4);
        spec.preset = match str_field("preset")? {
            Some(s) => ParamPreset::parse(s)?,
            None => ParamPreset::Test,
        };
        spec.strategy = match str_field("strategy")? {
            None | Some("blocks") => Strategy::Blocks,
            Some("linear") => Strategy::Linear,
            Some(other) => return Err(bad(&format!("unknown strategy {other:?} (linear|blocks)"))),
        };
        spec.pattern = if let Some(ct) = doc.get("ct_lesions") {
            FoiPattern::CtLesions {
                clusters: ct
                    .get("clusters")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| bad("ct_lesions.clusters must be a number"))?
                    as u32,
                radius: ct
                    .get("radius")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| bad("ct_lesions.radius must be a number"))?
                    as u32,
            }
        } else {
            match str_field("pattern")? {
                None | Some("uniform") => FoiPattern::UniformLattice,
                Some("random") => FoiPattern::Random,
                Some(other) => {
                    return Err(bad(&format!("unknown pattern {other:?} (uniform|random)")))
                }
            }
        };
        spec.variant = match str_field("variant")? {
            None | Some("combined") => GpuVariant::Combined,
            Some("unoptimized") => GpuVariant::Unoptimized,
            Some("fast_reduction") => GpuVariant::FastReduction,
            Some("memory_tiling") => GpuVariant::MemoryTiling,
            Some(other) => return Err(bad(&format!("unknown variant {other:?}"))),
        };
        if let Some(v) = num_field("tile_side")? {
            spec.tile_side = v as usize;
        }
        spec.check_period = num_field("check_period")?.map(|v| v as u64);
        if let Some(v) = num_field("devices_per_node")? {
            spec.devices_per_node = v as usize;
        }
        if let Some(f) = doc.get("fault") {
            let fnum = |key: &str| -> Result<f64, ConfigError> {
                match f.get(key) {
                    None => Ok(0.0),
                    Some(v) => v
                        .as_f64()
                        .ok_or_else(|| bad(&format!("fault.{key} must be a number"))),
                }
            };
            spec.fault = Some(FaultSpec {
                seed: fnum("seed")? as u64,
                rates: FaultRates {
                    death: fnum("death")?,
                    drop: fnum("drop")?,
                    duplicate: fnum("duplicate")?,
                    stall: fnum("stall")?,
                    stall_ns: fnum("stall_ns")? as u64,
                    payload_corruption: fnum("payload_corruption")?,
                    state_corruption: fnum("state_corruption")?,
                },
            });
        }
        if let Some(r) = doc.get("recovery") {
            let d = RecoverySpec::default();
            let rnum = |key: &str, default: u64| -> Result<u64, ConfigError> {
                match r.get(key) {
                    None => Ok(default),
                    Some(v) => v
                        .as_f64()
                        .map(|x| x as u64)
                        .ok_or_else(|| bad(&format!("recovery.{key} must be a number"))),
                }
            };
            spec.recovery = Some(RecoverySpec {
                checkpoint_period: rnum("checkpoint_period", d.checkpoint_period)?,
                max_retries: rnum("max_retries", d.max_retries as u64)? as u32,
                backoff_base_ns: rnum("backoff_base_ns", d.backoff_base_ns)?,
            });
        }
        spec.audit_period = num_field("audit_period")?.map(|v| v as u64);
        spec.retransmit_budget = num_field("retransmit_budget")?.map(|v| v as u64);
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> RunSpec {
        let mut s = RunSpec::test(ExecutorKind::Gpu, GridDims::new2d(32, 32), 40, 4, 7)
            .with_units(3)
            .with_fault(FaultSpec {
                seed: 0xFA17,
                rates: FaultRates {
                    death: 0.002,
                    drop: 0.001,
                    ..FaultRates::default()
                },
            })
            .with_recovery(RecoverySpec {
                checkpoint_period: 8,
                ..RecoverySpec::default()
            });
        s.check_period = Some(4);
        s.audit_period = Some(8);
        s.retransmit_budget = Some(2);
        s
    }

    #[test]
    fn json_round_trips_exactly() {
        let spec = full_spec();
        let doc = spec.to_json();
        let text = doc.render();
        let back = RunSpec::from_json(&Json::parse(&text).expect("parse")).expect("from_json");
        assert_eq!(back, spec);
    }

    #[test]
    fn minimal_document_fills_defaults() {
        let doc = Json::parse(r#"{"dims": [24, 24], "steps": 10, "num_foi": 2}"#).unwrap();
        let spec = RunSpec::from_json(&doc).unwrap();
        assert_eq!(spec.executor, ExecutorKind::Cpu);
        assert_eq!(spec.units, 4);
        assert_eq!(spec.preset, ParamPreset::Test);
        assert!(spec.fault.is_none());
    }

    #[test]
    fn parse_errors_are_typed_and_name_the_field() {
        let cases = [
            (r#"{"steps": 10, "num_foi": 2}"#, "dims"),
            (r#"{"dims": [8, 8], "num_foi": 2}"#, "steps"),
            (
                r#"{"dims": [8, 8], "steps": 10, "num_foi": 2, "executor": "tpu"}"#,
                "tpu",
            ),
            (
                r#"{"dims": [8, 8], "steps": 10, "num_foi": 2, "strategy": 5}"#,
                "strategy",
            ),
        ];
        for (text, needle) in cases {
            let err = RunSpec::from_json(&Json::parse(text).unwrap()).unwrap_err();
            match &err {
                ConfigError::InvalidParams(msg) => {
                    assert!(msg.contains(needle), "{msg:?} should mention {needle:?}")
                }
                other => panic!("expected InvalidParams, got {other:?}"),
            }
        }
    }

    #[test]
    fn validation_surfaces_executor_specific_errors() {
        let mut spec = RunSpec::test(ExecutorKind::Gpu, GridDims::new2d(16, 16), 10, 2, 0);
        spec.tile_side = 0;
        assert!(matches!(spec.validate(), Err(ConfigError::ZeroTileSide)));
        let mut spec = RunSpec::test(ExecutorKind::Cpu, GridDims::new2d(16, 16), 10, 2, 0);
        spec.units = 0;
        assert!(matches!(spec.validate(), Err(ConfigError::ZeroUnits)));
        let mut spec = RunSpec::test(ExecutorKind::Gpu, GridDims::new2d(16, 16), 10, 2, 0);
        spec.check_period = Some(99);
        assert!(matches!(
            spec.validate(),
            Err(ConfigError::CheckPeriodOutOfRange { .. })
        ));
    }

    #[test]
    fn builds_on_every_executor() {
        for exec in [ExecutorKind::Serial, ExecutorKind::Cpu, ExecutorKind::Gpu] {
            let spec = RunSpec::test(exec, GridDims::new2d(16, 16), 5, 2, 1).with_units(2);
            let mut sim = spec.build().expect("build");
            sim.run().expect("run");
            assert_eq!(sim.name(), exec.name());
            assert_eq!(sim.step(), 5);
        }
    }

    #[test]
    fn spec_built_config_matches_hand_built_config() {
        let spec = full_spec();
        let cfg = spec.to_gpu_config();
        assert_eq!(cfg.n_devices, 3);
        assert_eq!(cfg.check_period, Some(4));
        assert_eq!(cfg.audit_period, Some(8));
        assert_eq!(cfg.retransmit_budget, Some(2));
        assert_eq!(
            cfg.recovery.map(|r| r.checkpoint_period),
            Some(8),
            "recovery policy must carry through"
        );
        assert!(!cfg.fault_plan.is_exhausted());
    }
}
