//! Criterion bench for Fig 6 (strong scaling): fixed problem, growing
//! device count — wall-clock of the host implementation (the simulated-time
//! reproduction lives in the `fig6_strong` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_gpu::{GpuSim, GpuSimConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_strong_scaling");
    for devices in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(devices), &devices, |b, &d| {
            b.iter(|| {
                let p = SimParams::test_config(GridDims::new2d(64, 64), 40, 16, 1);
                let mut sim = GpuSim::new(GpuSimConfig::new(p, d));
                sim.run();
                sim.max_device_counters().update.elements
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
