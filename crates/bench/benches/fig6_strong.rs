//! Wall-clock microbench for Fig 6 (strong scaling): fixed problem,
//! growing device count — wall-clock of the host implementation (the
//! simulated-time reproduction lives in the `fig6_strong` binary).

use simcov_bench::microbench::Bench;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig};

fn main() {
    let mut b = Bench::from_args();
    for devices in [1usize, 4, 16] {
        b.bench(&format!("fig6_strong_scaling/{devices}"), || {
            let p = SimParams::test_config(GridDims::new2d(64, 64), 40, 16, 1);
            let mut sim = GpuSim::new(GpuSimConfig::new(p, devices)).expect("valid config");
            sim.run().expect("healthy run");
            sim.max_device_counters().update.elements
        });
    }
    b.finish();
}
