//! Kernel-level microbenchmarks: the building blocks whose costs the paper
//! reasons about — diffusion stencils, T-cell planning, reduction
//! strategies, tiled-layout indexing, counter-RNG draws.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpusim::kernel::LaunchConfig;
use gpusim::reduce::{atomic_reduce, tree_reduce};
use gpusim::DeviceCounters;
use simcov_core::diffusion::diffuse_voxel;
use simcov_core::grid::{Coord, GridDims};
use simcov_core::halo::HaloBox;
use simcov_core::params::SimParams;
use simcov_core::rng::{CounterRng, Stream};
use simcov_core::rules::{plan_tcell, RuleView};
use simcov_core::serial::SerialSim;
use simcov_core::tcell::TCellSlot;
use simcov_core::world::World;
use simcov_gpu::tiles::TileLayout;

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_counter_draw", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            CounterRng::new(42, Stream::TCellBid, 7, i).next_u64()
        })
    });
    c.bench_function("rng_poisson_480", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            CounterRng::new(42, Stream::IncubationPeriod, 7, i).poisson(480.0)
        })
    });
}

fn bench_diffusion(c: &mut Criterion) {
    c.bench_function("diffusion_stencil_64sq", |b| {
        let dims = GridDims::new2d(64, 64);
        let field: Vec<f32> = (0..dims.nvoxels()).map(|i| (i % 7) as f32).collect();
        let mut out = vec![0.0f32; dims.nvoxels()];
        b.iter(|| {
            for v in 0..dims.nvoxels() {
                let co = dims.coord(v);
                let mut sum = 0.0;
                let mut n = 0;
                for u in dims.neighbors(co) {
                    sum += field[u];
                    n += 1;
                }
                out[v] = diffuse_voxel(field[v], sum, n, 0.15, 0.004, 1e-10);
            }
            out[0]
        })
    });
}

fn bench_tcell_plan(c: &mut Criterion) {
    c.bench_function("tcell_plan_1k", |b| {
        let dims = GridDims::new2d(64, 64);
        let mut world = World::healthy(dims);
        // Scatter 1000 T cells.
        for k in 0..1000usize {
            world.tcells[(k * 17) % dims.nvoxels()] = TCellSlot::established(100, 0);
        }
        let p = SimParams::default();
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..dims.nvoxels() {
                if RuleView::tcell(&world, dims.coord(v)).occupied() {
                    let a = plan_tcell(&world, &p, 3, dims.coord(v));
                    acc = acc.wrapping_add(format_action(a));
                }
            }
            acc
        })
    });
}

fn format_action(a: simcov_core::rules::TCellAction) -> u64 {
    match a {
        simcov_core::rules::TCellAction::TryMove { bid, .. } => bid.src(),
        _ => 1,
    }
}

fn bench_reductions(c: &mut Criterion) {
    let n = 65536usize;
    let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let mut g = c.benchmark_group("reduction");
    g.bench_function("tree_64k", |b| {
        b.iter(|| {
            let mut cnt = DeviceCounters::new();
            tree_reduce(
                &mut cnt,
                LaunchConfig::cover(n, 256),
                n,
                8,
                8,
                0.0f64,
                |i| data[i],
                |a, b| *a += b,
            )
        })
    });
    g.bench_function("atomic_64k", |b| {
        b.iter(|| {
            let mut cnt = DeviceCounters::new();
            atomic_reduce(&mut cnt, n, 8, 0.0f64, |i| data[i], |a, b| *a += b)
        })
    });
    g.finish();
}

fn bench_tile_layout(c: &mut Criterion) {
    let dims = GridDims::new2d(256, 256);
    let p = simcov_core::decomp::Partition::new(dims, 4, simcov_core::decomp::Strategy::Blocks);
    let layout = TileLayout::new(HaloBox::new(dims, *p.sub(0)), 8);
    let mut g = c.benchmark_group("layout_indexing");
    g.bench_function("tiled_local", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for y in 0..120i64 {
                for x in 0..120i64 {
                    acc = acc.wrapping_add(layout.local(Coord::new(x, y, 0)));
                }
            }
            acc
        })
    });
    let hb = HaloBox::new(dims, *p.sub(0));
    g.bench_function("rowmajor_local", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for y in 0..120i64 {
                for x in 0..120i64 {
                    acc = acc.wrapping_add(hb.local(Coord::new(x, y, 0)));
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_serial_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial_step");
    for side in [32u32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let p = SimParams::test_config(GridDims::new2d(side, side), 1000, 4, 7);
            let mut sim = SerialSim::new(p);
            // Warm the simulation into an active state.
            for _ in 0..20 {
                sim.advance_step();
            }
            b.iter(|| {
                sim.advance_step();
                sim.step
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rng, bench_diffusion, bench_tcell_plan, bench_reductions, bench_tile_layout, bench_serial_step
}
criterion_main!(benches);
