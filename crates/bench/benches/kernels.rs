//! Kernel-level microbenchmarks: the building blocks whose costs the paper
//! reasons about — diffusion stencils, T-cell planning, reduction
//! strategies, tiled-layout indexing, counter-RNG draws.

use gpusim::kernel::LaunchConfig;
use gpusim::reduce::{atomic_reduce, tree_reduce};
use gpusim::DeviceCounters;
use simcov_bench::microbench::Bench;
use simcov_core::diffusion::diffuse_voxel;
use simcov_core::grid::{Coord, GridDims};
use simcov_core::halo::HaloBox;
use simcov_core::params::SimParams;
use simcov_core::rng::{CounterRng, Stream};
use simcov_core::rules::{plan_tcell, RuleView};
use simcov_core::serial::SerialSim;
use simcov_core::tcell::TCellSlot;
use simcov_core::world::World;
use simcov_gpu::tiles::TileLayout;

fn bench_rng(b: &mut Bench) {
    let mut i = 0u64;
    b.bench("rng_counter_draw", || {
        i += 1;
        CounterRng::new(42, Stream::TCellBid, 7, i).next_u64()
    });
    let mut j = 0u64;
    b.bench("rng_poisson_480", || {
        j += 1;
        CounterRng::new(42, Stream::IncubationPeriod, 7, j).poisson(480.0)
    });
}

fn bench_diffusion(b: &mut Bench) {
    let dims = GridDims::new2d(64, 64);
    let field: Vec<f32> = (0..dims.nvoxels()).map(|i| (i % 7) as f32).collect();
    let mut out = vec![0.0f32; dims.nvoxels()];
    b.bench("diffusion_stencil_64sq", || {
        for v in 0..dims.nvoxels() {
            let co = dims.coord(v);
            let mut sum = 0.0;
            let mut n = 0;
            for u in dims.neighbors(co) {
                sum += field[u];
                n += 1;
            }
            out[v] = diffuse_voxel(field[v], sum, n, 0.15, 0.004, 1e-10);
        }
        out[0]
    });
}

fn bench_tcell_plan(b: &mut Bench) {
    let dims = GridDims::new2d(64, 64);
    let mut world = World::healthy(dims);
    // Scatter 1000 T cells.
    for k in 0..1000usize {
        world.tcells[(k * 17) % dims.nvoxels()] = TCellSlot::established(100, 0);
    }
    let p = SimParams::default();
    b.bench("tcell_plan_1k", || {
        let mut acc = 0u64;
        for v in 0..dims.nvoxels() {
            if RuleView::tcell(&world, dims.coord(v)).occupied() {
                let a = plan_tcell(&world, &p, 3, dims.coord(v));
                acc = acc.wrapping_add(format_action(a));
            }
        }
        acc
    });
}

fn format_action(a: simcov_core::rules::TCellAction) -> u64 {
    match a {
        simcov_core::rules::TCellAction::TryMove { bid, .. } => bid.src(),
        _ => 1,
    }
}

fn bench_reductions(b: &mut Bench) {
    let n = 65536usize;
    let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    b.bench("reduction/tree_64k", || {
        let mut cnt = DeviceCounters::new();
        tree_reduce(
            &mut cnt,
            LaunchConfig::cover(n, 256),
            n,
            8,
            8,
            0.0f64,
            |i| data[i],
            |a, b| *a += b,
        )
    });
    b.bench("reduction/atomic_64k", || {
        let mut cnt = DeviceCounters::new();
        atomic_reduce(&mut cnt, n, 8, 0.0f64, |i| data[i], |a, b| *a += b)
    });
}

fn bench_tile_layout(b: &mut Bench) {
    let dims = GridDims::new2d(256, 256);
    let p = simcov_core::decomp::Partition::new(dims, 4, simcov_core::decomp::Strategy::Blocks);
    let layout = TileLayout::new(HaloBox::new(dims, *p.sub(0)), 8);
    b.bench("layout_indexing/tiled_local", || {
        let mut acc = 0usize;
        for y in 0..120i64 {
            for x in 0..120i64 {
                acc = acc.wrapping_add(layout.local(Coord::new(x, y, 0)));
            }
        }
        acc
    });
    let hb = HaloBox::new(dims, *p.sub(0));
    b.bench("layout_indexing/rowmajor_local", || {
        let mut acc = 0usize;
        for y in 0..120i64 {
            for x in 0..120i64 {
                acc = acc.wrapping_add(hb.local(Coord::new(x, y, 0)));
            }
        }
        acc
    });
}

fn bench_serial_step(b: &mut Bench) {
    for side in [32u32, 64] {
        let p = SimParams::test_config(GridDims::new2d(side, side), 1000, 4, 7);
        let mut sim = SerialSim::new(p);
        // Warm the simulation into an active state.
        for _ in 0..20 {
            sim.advance_step();
        }
        b.bench(&format!("serial_step/{side}"), || {
            sim.advance_step();
            sim.step
        });
    }
}

fn main() {
    let mut b = Bench::from_args();
    bench_rng(&mut b);
    bench_diffusion(&mut b);
    bench_tcell_plan(&mut b);
    bench_reductions(&mut b);
    bench_tile_layout(&mut b);
    bench_serial_step(&mut b);
    b.finish();
}
