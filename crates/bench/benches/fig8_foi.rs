//! Criterion bench for Fig 8 (FOI scaling): CPU-baseline wall-clock grows
//! with activity; the tiled GPU executor's grows sublinearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_gpu::{GpuSim, GpuSimConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_foi_scaling");
    for foi in [4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::new("cpu", foi), &foi, |b, &foi| {
            b.iter(|| {
                let p = SimParams::test_config(GridDims::new2d(64, 64), 40, foi, 1);
                let mut sim = CpuSim::new(CpuSimConfig::new(p, 4));
                sim.run();
                sim.total_counters().update.elements
            });
        });
        g.bench_with_input(BenchmarkId::new("gpu", foi), &foi, |b, &foi| {
            b.iter(|| {
                let p = SimParams::test_config(GridDims::new2d(64, 64), 40, foi, 1);
                let mut sim = GpuSim::new(GpuSimConfig::new(p, 4));
                sim.run();
                sim.total_counters().update.elements
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
