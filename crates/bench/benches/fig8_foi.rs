//! Wall-clock microbench for Fig 8 (FOI scaling): CPU-baseline wall-clock
//! grows with activity; the tiled GPU executor's grows sublinearly.

use simcov_bench::microbench::Bench;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig};

fn main() {
    let mut b = Bench::from_args();
    for foi in [4u32, 16, 64] {
        b.bench(&format!("fig8_foi_scaling/cpu/{foi}"), || {
            let p = SimParams::test_config(GridDims::new2d(64, 64), 40, foi, 1);
            let mut sim = CpuSim::new(CpuSimConfig::new(p, 4)).expect("valid config");
            sim.run().expect("healthy run");
            sim.total_counters().update.elements
        });
        b.bench(&format!("fig8_foi_scaling/gpu/{foi}"), || {
            let p = SimParams::test_config(GridDims::new2d(64, 64), 40, foi, 1);
            let mut sim = GpuSim::new(GpuSimConfig::new(p, 4)).expect("valid config");
            sim.run().expect("healthy run");
            sim.total_counters().update.elements
        });
    }
    b.finish();
}
