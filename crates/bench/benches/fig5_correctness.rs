//! Criterion bench for Fig 5: the three executors running the identical
//! correctness configuration (miniature).

use criterion::{criterion_group, criterion_main, Criterion};
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_core::serial::SerialSim;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_gpu::{GpuSim, GpuSimConfig};

fn params() -> SimParams {
    SimParams::test_config(GridDims::new2d(48, 48), 60, 4, 9)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_executors");
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut sim = SerialSim::new(params());
            sim.run();
            sim.last_stats().unwrap().virions
        })
    });
    g.bench_function("cpu_4ranks", |b| {
        b.iter(|| {
            let mut sim = CpuSim::new(CpuSimConfig::new(params(), 4));
            sim.run();
            sim.last_stats().unwrap().virions
        })
    });
    g.bench_function("gpu_4devices", |b| {
        b.iter(|| {
            let mut sim = GpuSim::new(GpuSimConfig::new(params(), 4));
            sim.run();
            sim.last_stats().unwrap().virions
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
