//! Wall-clock microbench for Fig 5: the three executors running the
//! identical correctness configuration (miniature).

use simcov_bench::microbench::Bench;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_core::serial::SerialSim;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig};

fn params() -> SimParams {
    SimParams::test_config(GridDims::new2d(48, 48), 60, 4, 9)
}

fn main() {
    let mut b = Bench::from_args();
    b.bench("fig5_executors/serial", || {
        let mut sim = SerialSim::new(params());
        sim.run();
        sim.last_stats().unwrap().virions
    });
    b.bench("fig5_executors/cpu_4ranks", || {
        let mut sim = CpuSim::new(CpuSimConfig::new(params(), 4)).expect("valid config");
        sim.run().expect("healthy run");
        sim.last_stats().unwrap().virions
    });
    b.bench("fig5_executors/gpu_4devices", || {
        let mut sim = GpuSim::new(GpuSimConfig::new(params(), 4)).expect("valid config");
        sim.run().expect("healthy run");
        sim.last_stats().unwrap().virions
    });
    b.finish();
}
