//! Criterion bench for Fig 7 (weak scaling): problem size grows with the
//! device count — per-device wall-clock should stay roughly flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_gpu::{GpuSim, GpuSimConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_weak_scaling");
    for (devices, side, foi) in [(1usize, 32u32, 4u32), (4, 64, 16), (16, 128, 64)] {
        let label = format!("{devices}dev_{side}sq");
        g.bench_with_input(BenchmarkId::from_parameter(label), &devices, |b, &d| {
            b.iter(|| {
                let p = SimParams::test_config(GridDims::new2d(side, side), 30, foi, 1);
                let mut sim = GpuSim::new(GpuSimConfig::new(p, d));
                sim.run();
                sim.max_device_counters().update.elements
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
