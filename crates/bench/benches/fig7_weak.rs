//! Wall-clock microbench for Fig 7 (weak scaling): problem size grows with
//! the device count — per-device wall-clock should stay roughly flat.

use simcov_bench::microbench::Bench;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig};

fn main() {
    let mut b = Bench::from_args();
    for (devices, side, foi) in [(1usize, 32u32, 4u32), (4, 64, 16), (16, 128, 64)] {
        b.bench(&format!("fig7_weak_scaling/{devices}dev_{side}sq"), || {
            let p = SimParams::test_config(GridDims::new2d(side, side), 30, foi, 1);
            let mut sim = GpuSim::new(GpuSimConfig::new(p, devices)).expect("valid config");
            sim.run().expect("healthy run");
            sim.max_device_counters().update.elements
        });
    }
    b.finish();
}
