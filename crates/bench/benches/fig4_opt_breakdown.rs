//! Criterion bench for Fig 4: wall-clock of the four optimization variants
//! on a dense-activity miniature (the simulated-time reproduction lives in
//! the `fig4_breakdown` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_variants");
    for v in GpuVariant::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(v.name()), &v, |b, &v| {
            b.iter(|| {
                // Dense activity: 32 FOI on 64².
                let p = SimParams::test_config(GridDims::new2d(64, 64), 40, 32, 3);
                let mut sim = GpuSim::new(GpuSimConfig::new(p, 4).with_variant(v));
                sim.run();
                sim.last_stats().unwrap().virions
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
