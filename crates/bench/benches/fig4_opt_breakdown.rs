//! Wall-clock microbench for Fig 4: the four optimization variants on a
//! dense-activity miniature (the simulated-time reproduction lives in the
//! `fig4_breakdown` binary).

use simcov_bench::microbench::Bench;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

fn main() {
    let mut b = Bench::from_args();
    for v in GpuVariant::ALL {
        b.bench(&format!("fig4_variants/{}", v.name()), || {
            // Dense activity: 32 FOI on 64².
            let p = SimParams::test_config(GridDims::new2d(64, 64), 40, 32, 3);
            let mut sim =
                GpuSim::new(GpuSimConfig::new(p, 4).with_variant(v)).expect("valid config");
            sim.run().expect("healthy run");
            sim.last_stats().unwrap().virions
        });
    }
    b.finish();
}
