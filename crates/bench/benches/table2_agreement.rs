//! Wall-clock microbench for Table 2: the full peak-agreement analysis
//! pipeline (multi-trial runs + envelope/peak statistics).

use simcov_bench::microbench::Bench;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_core::stats::{mean_std, percent_agreement, Metric, TimeSeries};
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig};

fn main() {
    let mut b = Bench::from_args();
    b.bench("table2_agreement_pipeline", || {
        let mut cpu_runs: Vec<TimeSeries> = Vec::new();
        let mut gpu_runs: Vec<TimeSeries> = Vec::new();
        for trial in 0..2u64 {
            let p = SimParams::test_config(GridDims::new2d(32, 32), 40, 4, 100 + trial);
            let mut cpu = CpuSim::new(CpuSimConfig::new(p.clone(), 4)).expect("valid config");
            cpu.run().expect("healthy run");
            cpu_runs.push(cpu.history().clone());
            let mut gpu = GpuSim::new(GpuSimConfig::new(p, 4)).expect("valid config");
            gpu.run().expect("healthy run");
            gpu_runs.push(gpu.history().clone());
        }
        let cpu_peaks: Vec<f64> = cpu_runs.iter().map(|r| r.peak(Metric::Virions)).collect();
        let gpu_peaks: Vec<f64> = gpu_runs.iter().map(|r| r.peak(Metric::Virions)).collect();
        let (cm, _) = mean_std(&cpu_peaks);
        let (gm, _) = mean_std(&gpu_peaks);
        percent_agreement(cm, gm)
    });
    b.finish();
}
