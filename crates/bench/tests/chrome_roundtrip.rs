//! The Chrome trace-event JSON the telemetry exporter writes must round-trip
//! through this crate's own JSON parser — the same parser the verify gate
//! uses on the `--trace-out` artifact — and the span hierarchy encoded in
//! the `args` objects must reconstruct to the full four-level
//! step → superstep → rank-phase → kernel chain on the GPU executor.

use simcov_bench::json::Json;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig};
use simcov_telemetry::{chrome, HealthConfig, Telemetry};
use std::collections::HashMap;

/// Drive a small instrumented GPU-executor run and export its trace.
fn rendered_trace() -> String {
    let p = SimParams::test_config(GridDims::new2d(32, 32), 8, 4, 11);
    let mut sim = GpuSim::new(GpuSimConfig::new(p, 4)).expect("valid config");
    sim.enable_telemetry(Telemetry::enabled(5, 1 << 14));
    sim.enable_health(HealthConfig::default());
    sim.run().expect("healthy run");
    let tel = sim.telemetry_handle();
    assert_eq!(tel.dropped(), 0, "ring sized for the whole run");
    chrome::render(&tel, sim.health_records())
}

#[test]
fn chrome_trace_roundtrips_through_bench_json_parser() {
    let text = rendered_trace();
    let doc = Json::parse(&text).expect("exporter output must be valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has events");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let other = doc.get("otherData").expect("otherData");
    assert_eq!(
        other.get("dropped_events").and_then(Json::as_f64),
        Some(0.0)
    );
    assert!(other.get("recorded_events").and_then(Json::as_f64).unwrap() > 0.0);

    // Every event is well-formed: named, phased, and placed on a track.
    for e in events {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        let ph = e.get("ph").and_then(Json::as_str).expect("phase");
        assert!(matches!(ph, "X" | "M" | "i"), "unexpected phase {ph}");
        assert!(e.get("tid").and_then(Json::as_f64).is_some());
    }

    // Thread-name metadata covers driver, ranks, and the merged GPU track.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(names.contains(&"driver"));
    assert!(names.contains(&"rank 0"));
    assert!(names.contains(&"gpu phases"));

    // Rebuild the span hierarchy from args.{id,parent,level} and check the
    // deepest chain reaches kernel → rank-phase → superstep → step.
    let mut level_of: HashMap<u64, (&str, u64)> = HashMap::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let args = e.get("args").expect("span args");
        let id = args.get("id").and_then(Json::as_f64).expect("id") as u64;
        let parent = args.get("parent").and_then(Json::as_f64).expect("parent") as u64;
        let level = args.get("level").and_then(Json::as_str).expect("level");
        level_of.insert(id, (level, parent));
    }
    let mut best_chain = 0usize;
    let mut kernel_chain_seen = false;
    for (&id, &(level, _)) in &level_of {
        let mut depth = 1usize;
        let mut levels = vec![level];
        let mut cur = id;
        while let Some(&(_, parent)) = level_of.get(&cur) {
            if parent == 0 || !level_of.contains_key(&parent) {
                break;
            }
            levels.push(level_of[&parent].0);
            cur = parent;
            depth += 1;
        }
        best_chain = best_chain.max(depth);
        if levels == ["kernel", "rank-phase", "superstep", "step"] {
            kernel_chain_seen = true;
        }
    }
    assert!(best_chain >= 4, "deepest chain only {best_chain} levels");
    assert!(
        kernel_chain_seen,
        "no kernel span chains up through rank-phase/superstep/step"
    );
}
