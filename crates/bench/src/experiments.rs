//! Structured experiment runners behind the bench binaries.
//!
//! Each paper artifact (Fig 4–8, Tables 1–2) is a function returning a
//! plain-data result with three consumers: `render()` produces the
//! human-readable table the binaries print, `to_json()` produces the
//! machine-readable record the `--json` flag and `repro_all`'s
//! `BENCH_results.json` artifact are built from, and the integration tests
//! assert on the fields directly.

use crate::configs::{paper, Experiment, ScaledExperiment};
use crate::json::Json;
use crate::report::{banner, fmt_secs, shape_verdict, Table};
use crate::runner::{run_cpu, run_gpu};
use simcov_core::stats::{envelope, mean_std, percent_agreement, Metric, TimeSeries};
use simcov_gpu::GpuVariant;

/// A named pass/fail expectation from the paper's reported shape.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    pub label: String,
    pub pass: bool,
    pub detail: String,
}

impl ShapeCheck {
    fn new(label: &str, pass: bool, detail: String) -> Self {
        ShapeCheck {
            label: label.to_string(),
            pass,
            detail,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label.as_str())),
            ("pass", Json::from(self.pass)),
            ("detail", Json::from(self.detail.as_str())),
        ])
    }
}

fn checks_to_json(checks: &[ShapeCheck]) -> Json {
    Json::Arr(checks.iter().map(ShapeCheck::to_json).collect())
}

// ---------------------------------------------------------------- Fig 4 --

/// One variant's two-category split of Fig 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    pub variant: &'static str,
    /// "Update Agents": update + tile checks + halo + communication.
    pub update_s: f64,
    /// "Reduce Statistics".
    pub reduce_s: f64,
}

#[derive(Debug, Clone)]
pub struct Fig4Result {
    pub scale: u32,
    pub rows: Vec<Fig4Row>,
    pub checks: Vec<ShapeCheck>,
}

/// Fig. 4 — optimization breakdown (§3.4): the four SIMCoV-GPU variants on
/// a dense-activity run (1024 FOI, 4 devices, one node).
pub fn fig4(scale: u32) -> Fig4Result {
    let e = Experiment {
        name: "fig4",
        grid_side: paper::FIG4_GRID,
        num_foi: paper::FIG4_FOI,
        steps: paper::STEPS,
        machine: paper::FIG4_MACHINE,
    };
    let mut rows = Vec::new();
    for v in GpuVariant::ALL {
        let se = ScaledExperiment::new(e, scale, 1);
        let out = run_gpu(se.params, 4, v, scale);
        // Fig 4's two categories: tile checks and halo work belong to the
        // agent-update pipeline.
        rows.push(Fig4Row {
            variant: v.name(),
            update_s: out.breakdown.update_s
                + out.breakdown.tile_s
                + out.breakdown.halo_s
                + out.comm_seconds,
            reduce_s: out.breakdown.reduce_s,
        });
    }
    let get = |v: GpuVariant| rows.iter().find(|r| r.variant == v.name()).unwrap();
    let unopt = get(GpuVariant::Unoptimized).clone();
    let fast = get(GpuVariant::FastReduction).clone();
    let tiling = get(GpuVariant::MemoryTiling).clone();
    let combined = get(GpuVariant::Combined).clone();
    let best_single = (fast.update_s + fast.reduce_s).min(tiling.update_s + tiling.reduce_s);
    let checks = vec![
        ShapeCheck::new(
            "reductions dominate the unoptimized variant",
            unopt.reduce_s > unopt.update_s,
            format!(
                "reduce {} vs update {}",
                fmt_secs(unopt.reduce_s),
                fmt_secs(unopt.update_s)
            ),
        ),
        ShapeCheck::new(
            "fast reduction slashes reduce time",
            fast.reduce_s < 0.5 * unopt.reduce_s,
            format!(
                "{} -> {}",
                fmt_secs(unopt.reduce_s),
                fmt_secs(fast.reduce_s)
            ),
        ),
        ShapeCheck::new(
            "memory tiling cuts update time",
            tiling.update_s < unopt.update_s,
            format!(
                "{} -> {}",
                fmt_secs(unopt.update_s),
                fmt_secs(tiling.update_s)
            ),
        ),
        ShapeCheck::new(
            "memory tiling also helps reductions (locality)",
            tiling.reduce_s < unopt.reduce_s,
            format!(
                "{} -> {}",
                fmt_secs(unopt.reduce_s),
                fmt_secs(tiling.reduce_s)
            ),
        ),
        ShapeCheck::new(
            "optimizations compose ~independently",
            combined.update_s + combined.reduce_s < best_single,
            format!(
                "combined {} vs best-single {}",
                fmt_secs(combined.update_s + combined.reduce_s),
                fmt_secs(best_single)
            ),
        ),
    ];
    Fig4Result {
        scale,
        rows,
        checks,
    }
}

impl Fig4Result {
    pub fn render(&self) -> String {
        let mut out = banner(
            "Fig 4: SIMCoV-GPU optimization breakdown (1024 FOI, 4 GPUs)",
            self.scale,
        );
        out.push('\n');
        let mut table = Table::new(&[
            "variant",
            "update agents (s)",
            "reduce statistics (s)",
            "total (s)",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.variant.to_string(),
                fmt_secs(r.update_s),
                fmt_secs(r.reduce_s),
                fmt_secs(r.update_s + r.reduce_s),
            ]);
        }
        out.push_str(&table.render());
        out.push_str("\nShape checks (paper Fig 4):\n");
        for c in &self.checks {
            out.push_str(&format!(
                "  {}: {} ({})\n",
                c.label,
                if c.pass { "✓" } else { "✗" },
                c.detail
            ));
        }
        out
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "variants",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("variant", Json::from(r.variant)),
                                ("update_agents_s", Json::from(r.update_s)),
                                ("reduce_statistics_s", Json::from(r.reduce_s)),
                                ("total_s", Json::from(r.update_s + r.reduce_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("shape_checks", checks_to_json(&self.checks)),
        ])
    }
}

// ---------------------------------------------------- Figs 6 / 7 / 8 -----

/// One CPU-vs-GPU comparison point of a scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    pub gpus: usize,
    pub cpus: usize,
    pub grid_side: u32,
    pub num_foi: u32,
    pub cpu_seconds: f64,
    pub gpu_seconds: f64,
    /// Paper-annotated speedup, where the paper ran the CPU trial.
    pub paper_speedup: Option<f64>,
}

impl ScalingPoint {
    pub fn speedup(&self) -> f64 {
        self.cpu_seconds / self.gpu_seconds
    }

    pub fn verdict(&self) -> &'static str {
        match self.paper_speedup {
            Some(p) => shape_verdict(p, self.speedup()),
            None => "-",
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("gpus", Json::from(self.gpus)),
            ("cpus", Json::from(self.cpus)),
            ("grid_side", Json::from(self.grid_side)),
            ("num_foi", Json::from(self.num_foi)),
            ("cpu_seconds", Json::from(self.cpu_seconds)),
            ("gpu_seconds", Json::from(self.gpu_seconds)),
            ("speedup", Json::from(self.speedup())),
            ("paper_speedup", Json::from(self.paper_speedup)),
            ("shape", Json::from(self.verdict())),
        ])
    }
}

fn run_point(
    name: &'static str,
    grid_side: u32,
    num_foi: u32,
    gpus: usize,
    cpus: usize,
    paper_speedup: Option<f64>,
    scale: u32,
) -> ScalingPoint {
    let e = Experiment {
        name,
        grid_side,
        num_foi,
        steps: paper::STEPS,
        machine: crate::configs::MachineConfig::new(gpus, cpus),
    };
    let se = ScaledExperiment::new(e, scale, 1);
    let cpu = run_cpu(se.params.clone(), cpus, scale);
    let gpu = run_gpu(se.params, gpus, GpuVariant::Combined, scale);
    ScalingPoint {
        gpus,
        cpus,
        grid_side,
        num_foi,
        cpu_seconds: cpu.seconds,
        gpu_seconds: gpu.seconds,
        paper_speedup,
    }
}

fn points_to_json(points: &[ScalingPoint]) -> Json {
    Json::Arr(points.iter().map(ScalingPoint::to_json).collect())
}

fn scaling_table(points: &[ScalingPoint], with_problem: bool) -> String {
    let mut header = vec!["{GPUs,CPUs}"];
    if with_problem {
        header.extend(["grid", "FOI"]);
    }
    header.extend([
        "CPU runtime (s)",
        "GPU runtime (s)",
        "speedup",
        "paper speedup",
        "shape",
    ]);
    let mut table = Table::new(&header);
    for p in points {
        let mut row = vec![format!("{{{},{}}}", p.gpus, p.cpus)];
        if with_problem {
            row.push(format!("{0}x{0}", p.grid_side));
            row.push(p.num_foi.to_string());
        }
        row.extend([
            fmt_secs(p.cpu_seconds),
            fmt_secs(p.gpu_seconds),
            format!("{:.2}x", p.speedup()),
            match p.paper_speedup {
                Some(ps) => format!("{ps:.2}x"),
                None => "- (no CPU trial)".to_string(),
            },
            p.verdict().to_string(),
        ]);
        table.row(row);
    }
    table.render()
}

#[derive(Debug, Clone)]
pub struct ScalingResult {
    pub scale: u32,
    pub points: Vec<ScalingPoint>,
}

/// Fig. 6 — strong scaling: fixed 10,000² / 16 FOI, resources doubling.
pub fn fig6(scale: u32) -> ScalingResult {
    let points = paper::STRONG_MACHINES
        .iter()
        .enumerate()
        .map(|(i, m)| {
            run_point(
                "strong",
                paper::STRONG_GRID,
                paper::STRONG_FOI,
                m.gpus,
                m.cpus,
                Some(paper::STRONG_SPEEDUPS[i]),
                scale,
            )
        })
        .collect();
    ScalingResult { scale, points }
}

impl ScalingResult {
    pub fn render_strong(&self) -> String {
        let mut out = banner("Fig 6: Strong scaling (10,000x10,000, 16 FOI)", self.scale);
        out.push('\n');
        out.push_str(&scaling_table(&self.points, false));
        out.push_str(
            "\nExpected shape: GPU wins ~5x at the base allocation; the advantage decays as GPUs\n\
             exceed the problem size, dropping below 1x at {64,2048} (paper: 4.98 -> 0.85).\n",
        );
        out
    }

    pub fn render_weak(&self) -> String {
        let mut out = banner(
            "Fig 7: Weak scaling (voxels, FOI and resources double)",
            self.scale,
        );
        out.push('\n');
        out.push_str(&scaling_table(&self.points, true));
        out.push_str(
            "\nExpected shape: a sustained ~4x GPU advantage across the sweep, with an initial\n\
             cost of parallelism between 4 and 16 GPUs before GPU runtime flattens\n\
             (paper: 4.91, 4.38, 3.53, 3.48, 3.82).\n",
        );
        out
    }

    pub fn to_json(&self) -> Json {
        Json::obj([("points", points_to_json(&self.points))])
    }
}

/// Fig. 7 — weak scaling: voxels and FOI double with resources.
pub fn fig7(scale: u32) -> ScalingResult {
    let points = (0..paper::WEAK_MACHINES.len())
        .map(|i| {
            let m = paper::WEAK_MACHINES[i];
            run_point(
                "weak",
                paper::WEAK_GRIDS[i],
                paper::WEAK_FOIS[i],
                m.gpus,
                m.cpus,
                Some(paper::WEAK_SPEEDUPS[i]),
                scale,
            )
        })
        .collect();
    ScalingResult { scale, points }
}

#[derive(Debug, Clone)]
pub struct Fig8Result {
    pub scale: u32,
    pub points: Vec<ScalingPoint>,
    /// GPU runtime growth factor per FOI doubling (expected sublinear).
    pub growth: Vec<f64>,
}

/// Fig. 8 — FOI scaling: 20,000² on {16,512}, FOI doubling 64 → 1024.
pub fn fig8(scale: u32) -> Fig8Result {
    let m = paper::FOI_MACHINE;
    let points: Vec<ScalingPoint> = paper::FOI_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &foi)| {
            run_point(
                "foi",
                paper::FOI_GRID,
                foi,
                m.gpus,
                m.cpus,
                paper::FOI_SPEEDUPS.get(i).copied(),
                scale,
            )
        })
        .collect();
    let growth = points
        .windows(2)
        .map(|w| w[1].gpu_seconds / w[0].gpu_seconds)
        .collect();
    Fig8Result {
        scale,
        points,
        growth,
    }
}

impl Fig8Result {
    pub fn render(&self) -> String {
        let mut out = banner("Fig 8: FOI scaling (20,000x20,000 on {16,512})", self.scale);
        out.push('\n');
        let mut table = Table::new(&[
            "FOI",
            "CPU runtime (s)",
            "GPU runtime (s)",
            "speedup",
            "paper speedup",
            "shape",
        ]);
        for p in &self.points {
            table.row(vec![
                p.num_foi.to_string(),
                fmt_secs(p.cpu_seconds),
                fmt_secs(p.gpu_seconds),
                format!("{:.2}x", p.speedup()),
                match p.paper_speedup {
                    Some(ps) => format!("{ps:.2}x"),
                    None => "- (no CPU trial)".to_string(),
                },
                p.verdict().to_string(),
            ]);
        }
        out.push_str(&table.render());
        out.push_str(&format!(
            "\nGPU runtime growth per FOI doubling: {:?} (expected sublinear, i.e. < 2x each)\n",
            self.growth
                .iter()
                .map(|g| format!("{g:.2}x"))
                .collect::<Vec<_>>()
        ));
        out.push_str(
            "Expected shape: GPU runtime grows sublinearly as activity saturates; the GPU\n\
             advantage widens with FOI (paper: 3.53 -> 11.97 from 64 to 512 FOI).\n",
        );
        out
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("points", points_to_json(&self.points)),
            (
                "gpu_growth_per_doubling",
                Json::Arr(self.growth.iter().map(|&g| Json::from(g)).collect()),
            ),
        ])
    }
}

// ------------------------------------------------------- Fig 5 / Table 2 --

/// Per-seed CPU and GPU trial histories of the correctness experiment —
/// Fig 5 and Table 2 are two views of the same trials.
pub struct CorrectnessTrials {
    pub scale: u32,
    pub trials: usize,
    pub cpu_runs: Vec<TimeSeries>,
    pub gpu_runs: Vec<TimeSeries>,
}

/// Run the §4.1 correctness trials (`seed_base`: 1000 for Fig 5's
/// convention, 2000 for Table 2's).
pub fn correctness_trials(scale: u32, trials: usize, seed_base: u64) -> CorrectnessTrials {
    let m = paper::CORRECTNESS.machine;
    let mut cpu_runs = Vec::new();
    let mut gpu_runs = Vec::new();
    for trial in 0..trials {
        let se = ScaledExperiment::new(paper::CORRECTNESS, scale, seed_base + trial as u64);
        eprintln!("trial {trial}: CPU x{} + GPU x{} ...", m.cpus, m.gpus);
        cpu_runs.push(run_cpu(se.params.clone(), m.cpus, scale).history);
        gpu_runs.push(run_gpu(se.params, m.gpus, GpuVariant::Combined, scale).history);
    }
    CorrectnessTrials {
        scale,
        trials,
        cpu_runs,
        gpu_runs,
    }
}

/// The three metrics Fig 5 / Table 2 track, with panel labels and the
/// paper's Table 2 agreement percentages.
pub const CORRECTNESS_METRICS: [(&str, Metric, f64); 3] = [
    ("Virus", Metric::Virions, 99.68),
    ("T cells", Metric::TCellsTissue, 99.01),
    ("Apop. Epi. Cells", Metric::EpiApoptotic, 99.42),
];

/// One Fig 5 panel: min/mean/max envelopes across trials, per executor.
pub struct Fig5Panel {
    pub label: &'static str,
    pub metric: Metric,
    pub cpu_env: Vec<(f64, f64, f64)>,
    pub gpu_env: Vec<(f64, f64, f64)>,
    /// Max relative deviation between CPU and GPU mean trajectories.
    pub max_rel_dev: f64,
}

pub fn fig5_panels(t: &CorrectnessTrials) -> Vec<Fig5Panel> {
    CORRECTNESS_METRICS
        .iter()
        .map(|&(label, metric, _)| {
            let cpu_env = envelope(&t.cpu_runs, metric);
            let gpu_env = envelope(&t.gpu_runs, metric);
            let max_rel_dev = cpu_env
                .iter()
                .zip(&gpu_env)
                .map(|(c, g)| {
                    let denom = c.1.abs().max(g.1.abs()).max(1.0);
                    (c.1 - g.1).abs() / denom
                })
                .fold(0.0f64, f64::max);
            Fig5Panel {
                label,
                metric,
                cpu_env,
                gpu_env,
                max_rel_dev,
            }
        })
        .collect()
}

pub fn render_fig5(scale: u32, panels: &[Fig5Panel]) -> String {
    let mut out = banner(
        "Fig 5: CPU vs GPU aggregate statistics over a simulated infection",
        scale,
    );
    out.push('\n');
    for (i, p) in panels.iter().enumerate() {
        out.push_str(&format!(
            "--- {}) {} ({}) ---\n",
            ["A", "B", "C"][i.min(2)],
            p.label,
            p.metric.name()
        ));
        out.push_str(&format!(
            "{:>8}  {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}\n",
            "step", "cpu_min", "cpu_mean", "cpu_max", "gpu_min", "gpu_mean", "gpu_max"
        ));
        let n = p.cpu_env.len();
        let stride = (n / 16).max(1);
        for i in (0..n).step_by(stride) {
            let c = p.cpu_env[i];
            let g = p.gpu_env[i];
            out.push_str(&format!(
                "{:>8}  {:>12.1} {:>12.1} {:>12.1}   {:>12.1} {:>12.1} {:>12.1}\n",
                i, c.0, c.1, c.2, g.0, g.1, g.2
            ));
        }
        out.push_str(&format!(
            "max relative mean deviation CPU vs GPU: {:.2e}\n\n",
            p.max_rel_dev
        ));
    }
    out.push_str(
        "Expected shape (paper Fig 5): CPU and GPU trajectories track each other closely\n\
         through the full infection (growth, T-cell response, clearance); envelopes overlap.\n",
    );
    out
}

pub fn fig5_to_json(panels: &[Fig5Panel]) -> Json {
    let env_json = |env: &[(f64, f64, f64)]| {
        Json::Arr(
            env.iter()
                .map(|&(lo, mean, hi)| {
                    Json::Arr(vec![Json::from(lo), Json::from(mean), Json::from(hi)])
                })
                .collect(),
        )
    };
    Json::Arr(
        panels
            .iter()
            .map(|p| {
                Json::obj([
                    ("metric", Json::from(p.metric.name())),
                    ("max_rel_mean_deviation", Json::from(p.max_rel_dev)),
                    ("cpu_envelope_min_mean_max", env_json(&p.cpu_env)),
                    ("gpu_envelope_min_mean_max", env_json(&p.gpu_env)),
                ])
            })
            .collect(),
    )
}

/// One Table 2 row: peak-statistic agreement between executors.
#[derive(Debug, Clone)]
pub struct AgreementRow {
    pub stat: &'static str,
    pub pct_agree: f64,
    pub cpu_std: f64,
    pub gpu_std: f64,
    pub paper_pct: f64,
}

pub fn table2_rows(t: &CorrectnessTrials) -> Vec<AgreementRow> {
    CORRECTNESS_METRICS
        .iter()
        .map(|&(stat, metric, paper_pct)| {
            let cpu_peaks: Vec<f64> = t.cpu_runs.iter().map(|r| r.peak(metric)).collect();
            let gpu_peaks: Vec<f64> = t.gpu_runs.iter().map(|r| r.peak(metric)).collect();
            let (cpu_mean, cpu_std) = mean_std(&cpu_peaks);
            let (gpu_mean, gpu_std) = mean_std(&gpu_peaks);
            AgreementRow {
                stat,
                pct_agree: percent_agreement(cpu_mean, gpu_mean),
                cpu_std,
                gpu_std,
                paper_pct,
            }
        })
        .collect()
}

pub fn render_table2(scale: u32, rows: &[AgreementRow]) -> String {
    let mut out = banner("Table 2: peak-statistic agreement (CPU vs GPU)", scale);
    out.push('\n');
    let mut table = Table::new(&[
        "Stat (Peak)",
        "Pct. Agree.",
        "CPU STD",
        "GPU STD",
        "paper Pct.",
    ]);
    for r in rows {
        table.row(vec![
            r.stat.to_string(),
            format!("{:.2}", r.pct_agree),
            format!("{:.2}", r.cpu_std),
            format!("{:.2}", r.gpu_std),
            format!("{:.2}", r.paper_pct),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nNote: in this reproduction CPU and GPU are bitwise identical per seed (the\n\
         counter-based-RNG strengthening of the paper's §4.1 staging fix), so agreement\n\
         is 100% by construction — tighter than the paper's ≥99%. Standard deviations\n\
         reflect genuine across-seed variability, as in the paper.\n",
    );
    out
}

pub fn table2_to_json(rows: &[AgreementRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("stat", Json::from(r.stat)),
                    ("pct_agreement", Json::from(r.pct_agree)),
                    ("cpu_std", Json::from(r.cpu_std)),
                    ("gpu_std", Json::from(r.gpu_std)),
                    ("paper_pct_agreement", Json::from(r.paper_pct)),
                ])
            })
            .collect(),
    )
}

// -------------------------------------------------------------- Table 1 --

/// Table 1 as data: the configuration matrix of the evaluation.
pub fn table1_to_json() -> Json {
    let exp = |name: &str,
               min_dim: u32,
               max_dim: u32,
               min_foi: u32,
               max_foi: u32,
               min_m: (usize, usize),
               max_m: (usize, usize)| {
        Json::obj([
            ("experiment", Json::from(name)),
            ("min_grid_side", Json::from(min_dim)),
            ("max_grid_side", Json::from(max_dim)),
            ("min_foi", Json::from(min_foi)),
            ("max_foi", Json::from(max_foi)),
            (
                "min_machine",
                Json::obj([("gpus", Json::from(min_m.0)), ("cpus", Json::from(min_m.1))]),
            ),
            (
                "max_machine",
                Json::obj([("gpus", Json::from(max_m.0)), ("cpus", Json::from(max_m.1))]),
            ),
        ])
    };
    Json::Arr(vec![
        exp("correctness", 10_000, 10_000, 16, 16, (4, 128), (4, 128)),
        exp(
            "strong_scaling",
            10_000,
            10_000,
            16,
            16,
            (4, 128),
            (64, 2048),
        ),
        exp(
            "weak_scaling",
            10_000,
            40_000,
            16,
            256,
            (4, 128),
            (64, 2048),
        ),
        exp(
            "foi_scaling",
            20_000,
            20_000,
            64,
            1024,
            (16, 512),
            (16, 512),
        ),
    ])
}
