//! Shared command-line parsing for the bench binaries.
//!
//! Every binary used to hand-roll its own `std::env::args()` loop; the
//! common flags drifted (some binaries silently ignored unknown arguments,
//! others exited). This module is the one place the shared surface is
//! parsed and documented:
//!
//! | flag | value | meaning |
//! |---|---|---|
//! | `--json` | `PATH` | write the machine-readable result document |
//! | `--trace-out` | `PATH` | record the unified telemetry span stream |
//! | `--metrics-out` | `PATH` | export the process metric registry on exit |
//! | `--smoke` | — | reduced scale for CI gates |
//! | `--seed` | `N` | override the suite's default master seed |
//! | `--threads` | `N` | pin the executor `WorkPool` worker count (0 = inline) |
//!
//! Binaries with extra flags call [`CommonFlags::extract`] and match the
//! leftover tokens themselves; binaries with no extra flags call
//! [`CommonFlags::parse`], which rejects anything unrecognized.

/// The flags shared by every bench binary.
#[derive(Debug, Clone, Default)]
pub struct CommonFlags {
    /// `--json PATH`: machine-readable result document.
    pub json: Option<String>,
    /// `--trace-out PATH`: unified telemetry span stream.
    pub trace_out: Option<String>,
    /// `--metrics-out PATH`: process metric registry export.
    pub metrics_out: Option<String>,
    /// `--smoke`: reduced scale for CI gates.
    pub smoke: bool,
    /// `--seed N`: master-seed override.
    pub seed: Option<u64>,
    /// `--threads N`: pin the executor `WorkPool` worker count so CI gates
    /// measure a reproducible parallel-rank configuration (0 = inline).
    pub threads: Option<usize>,
}

impl CommonFlags {
    /// Pull the common flags out of `argv`, returning the binary-specific
    /// leftovers in their original order.
    pub fn extract(args: impl IntoIterator<Item = String>) -> (Self, Vec<String>) {
        let mut flags = CommonFlags::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => flags.json = Some(expect_value(&a, it.next())),
                "--trace-out" => flags.trace_out = Some(expect_value(&a, it.next())),
                "--metrics-out" => flags.metrics_out = Some(expect_value(&a, it.next())),
                "--smoke" => flags.smoke = true,
                "--seed" => flags.seed = Some(parse_value(&a, it.next())),
                "--threads" => flags.threads = Some(parse_value(&a, it.next())),
                _ => rest.push(a),
            }
        }
        (flags, rest)
    }

    /// Parse the process arguments of a binary with no flags of its own;
    /// anything unrecognized prints `usage` and exits 2.
    pub fn parse(usage: &str) -> Self {
        let (flags, rest) = Self::extract(std::env::args().skip(1));
        if let Some(tok) = rest.first() {
            die_unknown(tok, usage);
        }
        flags
    }

    /// Parse the process arguments, handing back binary-specific leftovers.
    pub fn parse_with_rest() -> (Self, Vec<String>) {
        Self::extract(std::env::args().skip(1))
    }
}

/// The value following a flag, or exit 2.
pub fn expect_value(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

/// The parsed value following a flag, or exit 2.
pub fn parse_value<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    expect_value(flag, v).parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires a {}", std::any::type_name::<T>());
        std::process::exit(2);
    })
}

/// Report an unknown argument with the binary's usage line and exit 2.
pub fn die_unknown(tok: &str, usage: &str) -> ! {
    eprintln!("unknown argument: {tok}");
    eprintln!("{usage}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn extracts_common_flags_and_preserves_rest_order() {
        let (flags, rest) = CommonFlags::extract(argv(&[
            "--baseline",
            "b.json",
            "--json",
            "out.json",
            "--smoke",
            "--seed",
            "42",
            "--threads",
            "3",
            "--tolerance",
            "0.5",
        ]));
        assert_eq!(flags.json.as_deref(), Some("out.json"));
        assert!(flags.smoke);
        assert_eq!(flags.seed, Some(42));
        assert_eq!(flags.threads, Some(3));
        assert_eq!(rest, argv(&["--baseline", "b.json", "--tolerance", "0.5"]));
    }

    #[test]
    fn absent_flags_default_off() {
        let (flags, rest) = CommonFlags::extract(argv(&[]));
        assert!(flags.json.is_none() && flags.trace_out.is_none() && flags.metrics_out.is_none());
        assert!(!flags.smoke);
        assert!(flags.seed.is_none());
        assert!(flags.threads.is_none());
        assert!(rest.is_empty());
    }
}
