//! A minimal wall-clock microbenchmark harness (the workspace's stand-in
//! for criterion, which an offline build cannot fetch).
//!
//! Each `benches/*.rs` target builds a [`Bench`], registers closures, and
//! calls [`Bench::finish`]. Timing is batched: the harness calibrates a
//! batch size whose run lasts ≥ 1 ms (so per-call overhead and clock
//! granularity wash out, even for nanosecond-scale kernels), then samples a
//! fixed number of batches and reports per-iteration min / median / mean.
//!
//! CLI (after `cargo bench -- ...`): a bare token filters benchmarks by
//! substring; `--json <path>` writes the results as JSON; other `--flags`
//! (e.g. cargo's own `--bench`) are ignored.

use crate::json::{write_json, Json};
use crate::report::Table;
use simcov_telemetry::MonotonicClock;
use std::hint::black_box;

const TARGET_BATCH_NS: u128 = 1_000_000; // 1 ms
const MAX_BATCH: u64 = 1 << 22;
const SAMPLES: usize = 20;
const WARMUP_BATCHES: usize = 2;

#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub batch: u64,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
}

pub struct Bench {
    filter: Option<String>,
    json: Option<String>,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Bench {
    /// An empty harness with no filter, no JSON sink, default sample count.
    pub fn new() -> Self {
        Bench {
            filter: None,
            json: None,
            samples: SAMPLES,
            results: Vec::new(),
        }
    }

    /// Build from the process arguments (see module docs for the CLI).
    pub fn from_args() -> Self {
        let mut b = Bench::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if a == "--json" {
                b.json = it.next();
            } else if !a.starts_with('-') {
                b.filter = Some(a);
            }
        }
        b
    }

    /// Override the per-benchmark sample count (minimum 1). Smoke/CI modes
    /// use a small count: batch calibration still targets ≥ 1 ms per batch,
    /// so medians stay comparable to full runs, just noisier.
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Results gathered so far, for callers that gate on timings
    /// programmatically instead of (or in addition to) printing the table.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Register and immediately run one benchmark.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate the batch size up to ≥ 1 ms per batch.
        let mut batch = 1u64;
        loop {
            let t = Self::time_batch(batch, &mut f);
            if t >= TARGET_BATCH_NS || batch >= MAX_BATCH {
                break;
            }
            // Jump close to the target, at least doubling.
            let projected = (TARGET_BATCH_NS as f64 / t.max(1) as f64).ceil() as u64;
            batch = (batch * projected.max(2)).min(MAX_BATCH);
        }
        for _ in 0..WARMUP_BATCHES {
            Self::time_batch(batch, &mut f);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| Self::time_batch(batch, &mut f) as f64 / batch as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_string(),
            batch,
            min_ns: per_iter[0],
            median_ns: per_iter[self.samples / 2],
            mean_ns: per_iter.iter().sum::<f64>() / self.samples as f64,
        };
        eprintln!(
            "{:<32} {:>12} min  {:>12} median",
            result.name,
            fmt_ns(result.min_ns),
            fmt_ns(result.median_ns)
        );
        self.results.push(result);
    }

    /// Register and run two benchmarks as an interleaved A/B pair, returning
    /// the `min(b)/min(a)` time ratio over the paired samples.
    ///
    /// Sampling alternates a-batch, b-batch, a-batch, b-batch, … so each
    /// side's best sample comes from whatever quiet moment the window
    /// catches — a background burst on a shared machine inflates adjacent
    /// samples of *both* sides, never all of one side and none of the
    /// other. Sequential `bench` calls put all of `a`'s window before all
    /// of `b`'s, which turns any such burst into a spurious ratio shift —
    /// exactly what an overhead gate must not be sensitive to. Both closures
    /// must run the same nominal workload; the batch size is calibrated on
    /// `a` and shared. Returns `None` when a filter excludes either name.
    pub fn bench_pair<R, S>(
        &mut self,
        name_a: &str,
        mut f_a: impl FnMut() -> R,
        name_b: &str,
        mut f_b: impl FnMut() -> S,
    ) -> Option<f64> {
        if let Some(filter) = &self.filter {
            if !name_a.contains(filter.as_str()) || !name_b.contains(filter.as_str()) {
                return None;
            }
        }
        let mut batch = 1u64;
        loop {
            let t = Self::time_batch(batch, &mut f_a);
            if t >= TARGET_BATCH_NS || batch >= MAX_BATCH {
                break;
            }
            let projected = (TARGET_BATCH_NS as f64 / t.max(1) as f64).ceil() as u64;
            batch = (batch * projected.max(2)).min(MAX_BATCH);
        }
        for _ in 0..WARMUP_BATCHES {
            Self::time_batch(batch, &mut f_a);
            Self::time_batch(batch, &mut f_b);
        }
        let mut per_a = Vec::with_capacity(self.samples);
        let mut per_b = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            per_a.push(Self::time_batch(batch, &mut f_a) as f64 / batch as f64);
            per_b.push(Self::time_batch(batch, &mut f_b) as f64 / batch as f64);
        }
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let ratio = min(&per_b) / min(&per_a);
        for (name, mut per_iter) in [(name_a, per_a), (name_b, per_b)] {
            per_iter.sort_by(|a, b| a.total_cmp(b));
            let result = BenchResult {
                name: name.to_string(),
                batch,
                min_ns: per_iter[0],
                median_ns: per_iter[self.samples / 2],
                mean_ns: per_iter.iter().sum::<f64>() / self.samples as f64,
            };
            eprintln!(
                "{:<32} {:>12} min  {:>12} median",
                result.name,
                fmt_ns(result.min_ns),
                fmt_ns(result.median_ns)
            );
            self.results.push(result);
        }
        Some(ratio)
    }

    // Same monotonic clock helper the runtime trace records with
    // (`simcov_telemetry::MonotonicClock`), so bench timings and trace span
    // durations share one time source and are directly comparable.
    fn time_batch<R>(batch: u64, f: &mut impl FnMut() -> R) -> u128 {
        let clock = MonotonicClock::new();
        for _ in 0..batch {
            black_box(f());
        }
        clock.now_ns() as u128
    }

    /// Print the summary table (and the JSON artifact, if requested).
    pub fn finish(self) {
        let mut table = Table::new(&["benchmark", "min", "median", "mean", "batch"]);
        for r in &self.results {
            table.row(vec![
                r.name.clone(),
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns),
                r.batch.to_string(),
            ]);
        }
        println!("\n{}", table.render());
        if let Some(path) = &self.json {
            let doc = Json::Arr(
                self.results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::from(r.name.as_str())),
                            ("min_ns", Json::from(r.min_ns)),
                            ("median_ns", Json::from(r.median_ns)),
                            ("mean_ns", Json::from(r.mean_ns)),
                            ("batch", Json::from(r.batch)),
                        ])
                    })
                    .collect(),
            );
            write_json(path, &doc);
        }
    }
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        let mut b = Bench::new().with_samples(5);
        let mut x = 0u64;
        b.bench("noop_add", || {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.results.len(), 1);
        let r = &b.results[0];
        assert!(r.min_ns > 0.0 && r.min_ns <= r.median_ns && r.batch >= 2);
    }

    #[test]
    fn paired_ratio_tracks_relative_cost() {
        let mut b = Bench::new().with_samples(5);
        let work = |n: u64| {
            let mut x = 0u64;
            for i in 0..n {
                x = x.wrapping_mul(31).wrapping_add(black_box(i));
            }
            x
        };
        let ratio = b
            .bench_pair("pair/base", || work(200), "pair/double", || work(400))
            .expect("no filter set");
        assert_eq!(b.results.len(), 2);
        assert_eq!(b.results[0].batch, b.results[1].batch);
        // Double the work must land well above 1x and in the right ballpark.
        assert!((1.2..4.0).contains(&ratio), "ratio {ratio} out of range");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = Bench::new().with_samples(2);
        b.filter = Some("match_me".into());
        b.bench("other", || 1u64);
        b.bench("match_me_exactly", || 1u64);
        assert_eq!(b.results.len(), 1);
        assert_eq!(b.results[0].name, "match_me_exactly");
    }

    #[test]
    fn formats_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(4_500.0), "4.500 us");
        assert_eq!(fmt_ns(7_800_000.0), "7.800 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }
}
