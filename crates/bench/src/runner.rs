//! Run scaled experiments and convert measured work into simulated seconds
//! at paper scale.

use gpusim::{CostBreakdown, CostModel};
use pgas::CommCounters;
use simcov_core::params::SimParams;
use simcov_core::stats::TimeSeries;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

/// Result of one executor run, extrapolated to paper scale.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub label: String,
    /// Simulated runtime at paper scale (seconds).
    pub seconds: f64,
    /// Compute-side breakdown of the busiest device/rank.
    pub breakdown: CostBreakdown,
    /// Communication time (links + collectives).
    pub comm_seconds: f64,
    /// Per-step statistics of the scaled run.
    pub history: TimeSeries,
}

/// Scale extrapolation of runtime communication counters. Per-event RPCs
/// (T-cell boundary crossings) scale with the boundary per step (× s) over
/// × s more steps; bulk puts happen once per (neighbor, wave, step), so
/// their *count* scales only with steps while their *bytes* scale with the
/// boundary; collectives are once per step.
fn extrapolate_comm(cc: &CommCounters, s: f64) -> CommCounters {
    let f = |v: u64, k: f64| (v as f64 * k).round() as u64;
    CommCounters {
        supersteps: f(cc.supersteps, s),
        messages: f(cc.messages, s * s),
        bytes: f(cc.bytes, s * s),
        bulk_messages: f(cc.bulk_messages, s),
        bulk_bytes: f(cc.bulk_bytes, s * s),
        // Batches happen once per (src, dst, superstep) like bulk puts;
        // their bytes scale with the boundary.
        batches: f(cc.batches, s),
        batch_bytes: f(cc.batch_bytes, s * s),
        allreduces: f(cc.allreduces, s),
        allreduce_bytes: f(cc.allreduce_bytes, s),
        max_rank_messages: f(cc.max_rank_messages, s),
        max_rank_bytes: f(cc.max_rank_bytes, s),
        // Fault metering does not scale with the domain: injected events
        // fire a fixed schedule regardless of grid size.
        stalls: cc.stalls,
        stall_ns: cc.stall_ns,
        duplicates_suppressed: cc.duplicates_suppressed,
        dropped_messages: cc.dropped_messages,
        shuffled_inboxes: cc.shuffled_inboxes,
        // Integrity digests cover every batch byte, so checksum traffic
        // scales with the boundary like batch bytes; corruption events
        // fire a fixed schedule.
        integrity_bytes: f(cc.integrity_bytes, s * s),
        corruptions_landed: cc.corruptions_landed,
        corrupt_batches: cc.corrupt_batches,
        retransmits: cc.retransmits,
    }
}

/// Run SIMCoV-GPU on `n_devices` simulated devices and extrapolate by the
/// linear `scale`.
pub fn run_gpu(params: SimParams, n_devices: usize, variant: GpuVariant, scale: u32) -> RunOutput {
    let steps = params.steps;
    let mut sim = GpuSim::new(GpuSimConfig::new(params, n_devices).with_variant(variant))
        .expect("valid bench config");
    sim.run().expect("healthy bench run");
    let model = CostModel::default();
    let s = scale as f64;

    let maxdev = sim.max_device_counters().extrapolate(s);
    let breakdown = model.device_breakdown(&model.gpu, &maxdev);
    let link = sim.max_device_link().extrapolate(s);
    let link_t = model.link_time(
        link.intra_msgs,
        link.intra_bytes,
        link.inter_msgs,
        link.inter_bytes,
    );
    let paper_steps = (steps as f64 * s).round() as u64;
    let collective_t = model.gpu_collective_time(paper_steps, n_devices);
    let sync_t = model.gpu_multinode_sync_time(paper_steps, n_devices);
    let comm_seconds = link_t + collective_t + sync_t;
    RunOutput {
        label: format!("SIMCoV-GPU[{}] x{n_devices}", variant.name()),
        seconds: breakdown.total() + comm_seconds,
        breakdown,
        comm_seconds,
        history: sim.history().clone(),
    }
}

/// Run the SIMCoV-CPU baseline on `n_ranks` logical ranks and extrapolate.
pub fn run_cpu(params: SimParams, n_ranks: usize, scale: u32) -> RunOutput {
    let mut sim = CpuSim::new(CpuSimConfig::new(params, n_ranks)).expect("valid bench config");
    sim.run().expect("healthy bench run");
    let model = CostModel::default();
    let s = scale as f64;

    let maxrank = sim.max_rank_counters().extrapolate(s);
    let breakdown = model.device_breakdown(&model.cpu, &maxrank);
    let comm = extrapolate_comm(&sim.comm_counters(), s);
    let comm_seconds = model.rpc_comm_time(&comm, n_ranks);
    RunOutput {
        label: format!("SIMCoV-CPU x{n_ranks}"),
        seconds: breakdown.total() + comm_seconds,
        breakdown,
        comm_seconds,
        history: sim.history().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{paper, ScaledExperiment};

    #[test]
    fn gpu_beats_cpu_at_base_config() {
        // A fast sanity check at heavy reduction scale: the strong-scaling
        // base case must favor the GPU by a healthy factor.
        let se = ScaledExperiment::new(paper::CORRECTNESS, 128, 1);
        let gpu = run_gpu(se.params.clone(), 4, GpuVariant::Combined, 128);
        let cpu = run_cpu(se.params, 128, 128);
        assert!(gpu.seconds > 0.0 && cpu.seconds > 0.0);
        let speedup = cpu.seconds / gpu.seconds;
        assert!(
            speedup > 1.5,
            "expected a clear GPU advantage at the base config, got {speedup:.2}x \
             (gpu {:.1}s vs cpu {:.1}s)",
            gpu.seconds,
            cpu.seconds
        );
    }

    #[test]
    fn combined_variant_is_fastest() {
        let se = ScaledExperiment::new(paper::CORRECTNESS, 128, 1);
        let mut totals = Vec::new();
        for v in GpuVariant::ALL {
            let out = run_gpu(se.params.clone(), 4, v, 128);
            totals.push((v, out.seconds));
        }
        let combined = totals
            .iter()
            .find(|(v, _)| *v == GpuVariant::Combined)
            .unwrap()
            .1;
        let unopt = totals
            .iter()
            .find(|(v, _)| *v == GpuVariant::Unoptimized)
            .unwrap()
            .1;
        assert!(
            combined < unopt,
            "combined ({combined:.2}s) must beat unoptimized ({unopt:.2}s)"
        );
    }
}
