//! The paper's experiment configurations (Table 1) and their reduced-scale
//! instantiations.

use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;

/// A compute allocation: `{GPUs, CPU cores}` as the paper writes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    pub gpus: usize,
    pub cpus: usize,
}

impl MachineConfig {
    pub const fn new(gpus: usize, cpus: usize) -> Self {
        MachineConfig { gpus, cpus }
    }
}

/// One paper experiment: grid, FOI, steps, machine.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    pub name: &'static str,
    /// Grid side in voxels at paper scale (2D square grids throughout the
    /// paper's evaluation).
    pub grid_side: u32,
    pub num_foi: u32,
    /// Steps at paper scale (33,120 ≈ 23 simulated days).
    pub steps: u64,
    pub machine: MachineConfig,
}

/// The paper's configurations (Table 1) and reported results (Figs 6–8).
pub mod paper {
    use super::*;

    /// Simulation length used throughout the evaluation.
    pub const STEPS: u64 = 33_120;

    /// Correctness experiment (§4.1): 10,000², 16 FOI, {4,128}, 5 trials.
    pub const CORRECTNESS: Experiment = Experiment {
        name: "correctness",
        grid_side: 10_000,
        num_foi: 16,
        steps: STEPS,
        machine: MachineConfig::new(4, 128),
    };

    pub const CORRECTNESS_TRIALS: usize = 5;

    /// Strong scaling (§4.2): fixed 10,000², 16 FOI; resources double.
    pub const STRONG_MACHINES: [MachineConfig; 5] = [
        MachineConfig::new(4, 128),
        MachineConfig::new(8, 256),
        MachineConfig::new(16, 512),
        MachineConfig::new(32, 1024),
        MachineConfig::new(64, 2048),
    ];
    pub const STRONG_GRID: u32 = 10_000;
    pub const STRONG_FOI: u32 = 16;
    /// Speedups the paper annotates on Fig 6.
    pub const STRONG_SPEEDUPS: [f64; 5] = [4.98, 3.38, 2.59, 1.38, 0.85];

    /// Weak scaling (§4.3): problem size and FOI double with resources
    /// (grid side × √2 per step: 10,000² → 40,000²; FOI 16 → 256).
    pub const WEAK_GRIDS: [u32; 5] = [10_000, 14_142, 20_000, 28_284, 40_000];
    pub const WEAK_FOIS: [u32; 5] = [16, 32, 64, 128, 256];
    pub const WEAK_MACHINES: [MachineConfig; 5] = STRONG_MACHINES;
    /// Speedups the paper annotates on Fig 7.
    pub const WEAK_SPEEDUPS: [f64; 5] = [4.91, 4.38, 3.53, 3.48, 3.82];

    /// FOI scaling (§4.4): 20,000², {16,512}, FOI doubling 64 → 1024.
    pub const FOI_GRID: u32 = 20_000;
    pub const FOI_MACHINE: MachineConfig = MachineConfig::new(16, 512);
    pub const FOI_COUNTS: [u32; 5] = [64, 128, 256, 512, 1024];
    /// Speedups the paper annotates on Fig 8, for FOI = 64, 128, 256, 512
    /// (the 64-FOI point coincides with the {16,512} weak-scaling point and
    /// its 3.53×; the paper ran no CPU trial at 1024 FOI, and only a single
    /// CPU trial at 512).
    pub const FOI_SPEEDUPS: [f64; 4] = [3.53, 5.16, 7.68, 11.97];

    /// Fig 4 (§3.4): optimization breakdown — dense activity (1024 FOI)
    /// on 4 GPUs, one node.
    pub const FIG4_GRID: u32 = 10_000;
    pub const FIG4_FOI: u32 = 1024;
    pub const FIG4_MACHINE: MachineConfig = MachineConfig::new(4, 128);
}

/// An experiment instantiated at `1/scale` of the paper's linear size.
#[derive(Debug, Clone)]
pub struct ScaledExperiment {
    pub experiment: Experiment,
    pub scale: u32,
    pub params: SimParams,
}

impl ScaledExperiment {
    /// Scale an experiment down by `scale` in every linear dimension
    /// (grid side and step count), preserving the FOI count and machine.
    pub fn new(e: Experiment, scale: u32, seed: u64) -> Self {
        assert!(scale >= 1);
        let side = (e.grid_side / scale).max(16);
        let steps = (e.steps / scale as u64).max(32);
        let params = SimParams::scaled_to(GridDims::new2d(side, side), steps, e.num_foi, seed);
        ScaledExperiment {
            experiment: e,
            scale,
            params,
        }
    }
}

/// The `SIMCOV_SCALE` environment override (default 32).
pub fn scale_from_env() -> u32 {
    std::env::var("SIMCOV_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Number of correctness trials (`SIMCOV_TRIALS`, default paper's 5).
pub fn trials_from_env() -> usize {
    std::env::var("SIMCOV_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(paper::CORRECTNESS_TRIALS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        // Strong scaling doubles machines from {4,128} to {64,2048}.
        assert_eq!(paper::STRONG_MACHINES[0], MachineConfig::new(4, 128));
        assert_eq!(paper::STRONG_MACHINES[4], MachineConfig::new(64, 2048));
        for w in paper::STRONG_MACHINES.windows(2) {
            assert_eq!(w[1].gpus, w[0].gpus * 2);
            assert_eq!(w[1].cpus, w[0].cpus * 2);
        }
        // Weak scaling doubles voxels (side × √2) and FOI.
        for w in paper::WEAK_GRIDS.windows(2) {
            let ratio = (w[1] as f64 * w[1] as f64) / (w[0] as f64 * w[0] as f64);
            assert!((ratio - 2.0).abs() < 0.01, "voxel doubling: {ratio}");
        }
        for w in paper::WEAK_FOIS.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        assert_eq!(paper::WEAK_GRIDS[4], 40_000);
        assert_eq!(paper::WEAK_FOIS[4], 256);
        // FOI scaling: 64 → 1024 on {16, 512}.
        assert_eq!(paper::FOI_COUNTS[0], 64);
        assert_eq!(paper::FOI_COUNTS[4], 1024);
        assert_eq!(paper::FOI_MACHINE, MachineConfig::new(16, 512));
        assert_eq!(paper::FOI_GRID, 20_000);
        // Correctness: 10,000², 16 FOI, {4,128}, 33,120 steps.
        assert_eq!(paper::CORRECTNESS.grid_side, 10_000);
        assert_eq!(paper::CORRECTNESS.steps, 33_120);
        // GPU:CPU ratio is 1:32 everywhere.
        for m in paper::STRONG_MACHINES {
            assert_eq!(m.cpus, m.gpus * 32);
        }
    }

    #[test]
    fn scaled_experiment_dimensions() {
        let s = ScaledExperiment::new(paper::CORRECTNESS, 32, 1);
        assert_eq!(s.params.dims.x, 312);
        assert_eq!(s.params.steps, 1035);
        assert_eq!(s.params.num_foi, 16);
        s.params.validate().unwrap();
    }

    #[test]
    fn scale_floor() {
        let e = Experiment {
            name: "tiny",
            grid_side: 100,
            num_foi: 1,
            steps: 100,
            machine: MachineConfig::new(1, 1),
        };
        let s = ScaledExperiment::new(e, 1000, 1);
        assert!(s.params.dims.x >= 16);
        assert!(s.params.steps >= 32);
    }
}
