//! # simcov-bench — the experiment harness
//!
//! Regenerates every table and figure of the SIMCoV-GPU paper's evaluation
//! (see the per-experiment index in DESIGN.md):
//!
//! | artifact | binary |
//! |---|---|
//! | Table 1 (configurations)      | `table1_configs` |
//! | Fig 4 (optimization breakdown)| `fig4_breakdown` |
//! | Fig 5 (correctness series)    | `fig5_correctness` |
//! | Table 2 (peak agreement)      | `table2_agreement` |
//! | Fig 6 (strong scaling)        | `fig6_strong` |
//! | Fig 7 (weak scaling)          | `fig7_weak` |
//! | Fig 8 (FOI scaling)           | `fig8_foi` |
//! | everything                    | `repro_all` |
//!
//! Runs execute at a reduced linear scale (default 32; `SIMCOV_SCALE=16`
//! for a closer but slower reproduction) and are extrapolated to the
//! paper's configuration through the scale-similarity rules in
//! `gpusim::counters` before the cost model converts measured work into
//! simulated seconds on the paper's hardware.

pub mod cli;
pub mod configs;
pub mod experiments;
pub mod json;
pub mod microbench;
pub mod report;
pub mod runner;

pub use cli::CommonFlags;
pub use configs::{paper, Experiment, MachineConfig, ScaledExperiment};
pub use json::Json;
pub use runner::{run_cpu, run_gpu, RunOutput};
