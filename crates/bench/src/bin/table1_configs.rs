//! Table 1 — the configuration matrix of the performance evaluation,
//! printed at paper scale and at the current reproduction scale.
//!
//! `--json <path>` additionally writes the matrix as JSON.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::{paper, scale_from_env};
use simcov_bench::experiments::table1_to_json;
use simcov_bench::json::write_json;
use simcov_bench::report::Table;

fn main() {
    let flags = CommonFlags::parse("usage: table1_configs [--json PATH]");
    let scale = scale_from_env();
    println!("== Table 1: experiment configurations ==\n");
    let mut t = Table::new(&[
        "Experiment",
        "Min. Dim.",
        "Max. Dim.",
        "Min. FOI",
        "Max. FOI",
        "Min. {GPUs,CPUs}",
        "Max. {GPUs,CPUs}",
    ]);
    t.row(vec![
        "Correctness".into(),
        "[10,000x10,000x1]".into(),
        "[10,000x10,000x1]".into(),
        "16".into(),
        "16".into(),
        "{4,128}".into(),
        "{4,128}".into(),
    ]);
    t.row(vec![
        "Strong Scaling".into(),
        "[10,000x10,000x1]".into(),
        "[10,000x10,000x1]".into(),
        "16".into(),
        "16".into(),
        "{4,128}".into(),
        "{64,2048}".into(),
    ]);
    t.row(vec![
        "Weak Scaling".into(),
        "[10,000x10,000x1]".into(),
        "[40,000x40,000x1]".into(),
        "16".into(),
        "256".into(),
        "{4,128}".into(),
        "{64,2048}".into(),
    ]);
    t.row(vec![
        "FOI Scaling".into(),
        "[20,000x20,000x1]".into(),
        "[20,000x20,000x1]".into(),
        "64".into(),
        "1024*".into(),
        "{16,512}".into(),
        "{16,512}".into(),
    ]);
    println!("{}", t.render());
    println!("* the paper could not run a 1024-FOI SIMCoV-CPU trial; this reproduction can.\n");
    println!(
        "Reproduction scale: 1/{scale} linear (grids {}x{} .. {}x{}, {} steps); \
         machine sizes are preserved as logical ranks.",
        paper::STRONG_GRID / scale,
        paper::STRONG_GRID / scale,
        paper::WEAK_GRIDS[4] / scale,
        paper::WEAK_GRIDS[4] / scale,
        paper::STEPS / scale as u64,
    );
    if let Some(path) = flags.json {
        write_json(&path, &table1_to_json());
    }
}
