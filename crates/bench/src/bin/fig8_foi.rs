//! Fig. 8 — FOI scaling: 20,000² slice on {16 GPUs, 512 cores}; only the
//! number of initial foci of infection doubles, 64 → 1024. (The paper ran
//! no CPU trial at 1024 FOI; we run it anyway and also report the paper's
//! extrapolated 11.97× point.)

use simcov_bench::configs::{paper, scale_from_env, Experiment, ScaledExperiment};
use simcov_bench::report::{banner, fmt_secs, shape_verdict, Table};
use simcov_bench::runner::{run_cpu, run_gpu};
use simcov_gpu::GpuVariant;

fn main() {
    let scale = scale_from_env();
    println!("{}", banner("Fig 8: FOI scaling (20,000x20,000 on {16,512})", scale));
    let m = paper::FOI_MACHINE;
    let mut table = Table::new(&[
        "FOI",
        "CPU runtime (s)",
        "GPU runtime (s)",
        "speedup",
        "paper speedup",
        "shape",
    ]);
    let mut gpu_times = Vec::new();
    for (i, &foi) in paper::FOI_COUNTS.iter().enumerate() {
        let e = Experiment {
            name: "foi",
            grid_side: paper::FOI_GRID,
            num_foi: foi,
            steps: paper::STEPS,
            machine: m,
        };
        let se = ScaledExperiment::new(e, scale, 1);
        let cpu = run_cpu(se.params.clone(), m.cpus, scale);
        let gpu = run_gpu(se.params, m.gpus, GpuVariant::Combined, scale);
        gpu_times.push(gpu.seconds);
        let speedup = cpu.seconds / gpu.seconds;
        // The paper annotates speedups for 64..512 FOI; it ran no CPU
        // trial at 1024 FOI.
        let (paper_speedup, verdict) = if i < paper::FOI_SPEEDUPS.len() {
            let ps = paper::FOI_SPEEDUPS[i];
            (format!("{ps:.2}x"), shape_verdict(ps, speedup).to_string())
        } else {
            ("- (no CPU trial)".to_string(), "-".to_string())
        };
        table.row(vec![
            foi.to_string(),
            fmt_secs(cpu.seconds),
            fmt_secs(gpu.seconds),
            format!("{speedup:.2}x"),
            paper_speedup,
            verdict,
        ]);
    }
    println!("{}", table.render());
    // Sublinearity check: GPU runtime growth per FOI doubling.
    let growth: Vec<f64> = gpu_times.windows(2).map(|w| w[1] / w[0]).collect();
    println!(
        "GPU runtime growth per FOI doubling: {:?} (expected sublinear, i.e. < 2x each)",
        growth.iter().map(|g| format!("{g:.2}x")).collect::<Vec<_>>()
    );
    println!(
        "Expected shape: GPU runtime grows sublinearly as activity saturates; the GPU\n\
         advantage widens with FOI (paper: 3.53 -> 11.97 from 64 to 512 FOI)."
    );
}
