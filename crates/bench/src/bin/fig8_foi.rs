//! Fig. 8 — FOI scaling: 20,000² slice on {16 GPUs, 512 cores}; only the
//! number of initial foci of infection doubles, 64 → 1024. (The paper ran
//! no CPU trial at 1024 FOI; we run it anyway and also report the paper's
//! extrapolated 11.97× point.)
//!
//! `--json <path>` additionally writes the sweep points as JSON.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::scale_from_env;
use simcov_bench::experiments::fig8;
use simcov_bench::json::write_json;

fn main() {
    let flags = CommonFlags::parse("usage: fig8_foi [--json PATH]");
    let scale = scale_from_env();
    let result = fig8(scale);
    println!("{}", result.render());
    if let Some(path) = flags.json {
        write_json(&path, &result.to_json());
    }
}
