//! `sweep_server` — run a batch of simulation jobs on the sweep job server.
//!
//! ```text
//! usage: sweep_server (--jobs FILE | --demo N) [--out-dir DIR]
//!        [--workers N] [--pool-threads N] [--persist-every K]
//!        [--halt-after S] [--seed N] [--json PATH]
//! ```
//!
//! `--jobs FILE` submits a JSON sweep file: either a top-level array of job
//! objects or `{"jobs": [...]}`, each job a `{"name": ..., "run": {...}}`
//! document in the [`RunSpec`] schema (see DESIGN.md for the field table).
//! `--demo N` instead generates N small seeded CPU jobs (seeds `--seed`,
//! `--seed + 1`, ...) — the self-contained way to exercise the server.
//!
//! Per job the server writes `<name>.jsonl` (streamed step/recovery/
//! integrity records), `<name>.csv` (final trajectory), a `.done` marker,
//! durable checkpoints every `--persist-every` steps, and DLQ entries under
//! `dlq/` for terminally failed jobs.
//!
//! `--halt-after S` simulates a server crash: every *freshly started* job
//! halts before computing step S and the process exits 3. Re-running the
//! same command line resumes each interrupted job from its durable
//! checkpoint (completed jobs are skipped via their `.done` markers) and
//! the final CSVs are byte-identical to an uninterrupted run.
//!
//! Exit code: 0 when every job completed (or was skipped), 3 when any job
//! was interrupted by `--halt-after`. Dead-lettered jobs do NOT fail the
//! process — the DLQ is the failure channel of a batch server; the summary
//! (and `--json`) reports their count.

use simcov_bench::cli::{self, CommonFlags};
use simcov_bench::json::{write_json, Json};
use simcov_core::grid::GridDims;
use simcov_sweep::{ExecutorKind, JobSpec, JobStatus, RunSpec, SweepConfig, SweepServer};

const USAGE: &str = "usage: sweep_server (--jobs FILE | --demo N) [--out-dir DIR]\n\
                     \t[--workers N] [--pool-threads N] [--persist-every K]\n\
                     \t[--halt-after S] [--seed N] [--json PATH]";

struct Cli {
    jobs_file: Option<String>,
    demo: Option<u64>,
    out_dir: String,
    workers: usize,
    pool_threads: usize,
    persist_every: u64,
    halt_after: Option<u64>,
}

fn parse_cli() -> (Cli, CommonFlags) {
    let (common, rest) = CommonFlags::parse_with_rest();
    let mut cli = Cli {
        jobs_file: None,
        demo: None,
        out_dir: "target/sweep/server".to_string(),
        workers: 2,
        pool_threads: 0,
        persist_every: 10,
        halt_after: None,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => cli.jobs_file = Some(cli::expect_value(&a, it.next())),
            "--demo" => cli.demo = Some(cli::parse_value(&a, it.next())),
            "--out-dir" => cli.out_dir = cli::expect_value(&a, it.next()),
            "--workers" => cli.workers = cli::parse_value(&a, it.next()),
            "--pool-threads" => cli.pool_threads = cli::parse_value(&a, it.next()),
            "--persist-every" => cli.persist_every = cli::parse_value(&a, it.next()),
            "--halt-after" => cli.halt_after = Some(cli::parse_value(&a, it.next())),
            other => cli::die_unknown(other, USAGE),
        }
    }
    if cli.jobs_file.is_some() == cli.demo.is_some() {
        eprintln!("exactly one of --jobs and --demo is required");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    (cli, common)
}

/// Parse a sweep file: a top-level array of jobs or `{"jobs": [...]}`.
fn load_jobs(path: &str) -> Vec<JobSpec> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("read {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let jobs = doc
        .as_arr()
        .or_else(|| doc.get("jobs").and_then(|j| j.as_arr()))
        .unwrap_or_else(|| {
            eprintln!("{path}: expected a job array or an object with a \"jobs\" array");
            std::process::exit(2);
        });
    jobs.iter()
        .enumerate()
        .map(|(i, j)| {
            JobSpec::from_json(j).unwrap_or_else(|e| {
                eprintln!("{path}: job {i}: {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// N small seeded CPU jobs — the self-contained demo sweep.
fn demo_jobs(n: u64, base_seed: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|i| {
            let run = RunSpec::test(
                ExecutorKind::Cpu,
                GridDims::new2d(16, 16),
                8,
                1,
                base_seed + i,
            )
            .with_units(2);
            JobSpec::new(format!("demo{i:04}"), run)
        })
        .collect()
}

fn main() {
    let (cli, common) = parse_cli();
    let mut jobs = match (&cli.jobs_file, cli.demo) {
        (Some(path), _) => load_jobs(path),
        (None, Some(n)) => demo_jobs(n, common.seed.unwrap_or(1)),
        _ => unreachable!(),
    };
    for j in &mut jobs {
        if j.persist_every == 0 {
            j.persist_every = cli.persist_every;
        }
        if let Some(h) = cli.halt_after {
            j.halt_after = Some(h);
        }
    }
    let n_jobs = jobs.len();
    println!(
        "sweep_server: {n_jobs} jobs, {} workers, out-dir {}",
        cli.workers, cli.out_dir
    );

    let cfg = SweepConfig::new(&cli.out_dir)
        .with_workers(cli.workers)
        .with_pool_threads(cli.pool_threads);
    let server = SweepServer::start(cfg).unwrap_or_else(|e| {
        eprintln!("start server: {e}");
        std::process::exit(2);
    });
    server.submit_all(jobs);
    let results = server.join();

    let mut completed = 0u64;
    let mut skipped = 0u64;
    let mut interrupted = 0u64;
    let mut dead = 0u64;
    for (name, status) in &results {
        match status {
            JobStatus::Completed(r) => {
                completed += 1;
                println!(
                    "  done {name}: {} steps{} ({:.3}s)",
                    r.history.steps.len(),
                    r.resumed_from
                        .map(|s| format!(", resumed from step {s}"))
                        .unwrap_or_default(),
                    r.wall_seconds
                );
            }
            JobStatus::Skipped => {
                skipped += 1;
                println!("  skip {name}: already complete");
            }
            JobStatus::Interrupted { at_step } => {
                interrupted += 1;
                println!("  halt {name}: interrupted before step {at_step}");
            }
            JobStatus::Dead(dl) => {
                dead += 1;
                println!("  DEAD {name}: {}", dl.error);
            }
        }
    }
    println!(
        "sweep_server: {completed} completed, {skipped} skipped, \
         {interrupted} interrupted, {dead} dead-lettered"
    );

    if let Some(path) = common.json {
        write_json(
            &path,
            &Json::obj([
                ("suite", Json::from("sweep_server")),
                ("jobs", Json::from(n_jobs)),
                ("completed", Json::from(completed)),
                ("skipped", Json::from(skipped)),
                ("interrupted", Json::from(interrupted)),
                ("dead", Json::from(dead)),
            ]),
        );
    }
    if interrupted > 0 {
        std::process::exit(3);
    }
}
