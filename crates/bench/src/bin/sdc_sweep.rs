//! SDC sweep: silent-data-corruption rate × integrity audit period on the
//! self-healing runtime.
//!
//! For every (corruption rate, audit period) cell the sweep runs the CPU
//! executor under a seeded fault plan that flips bits both in in-flight
//! coalesced batches (payload corruption) and in rank-resident state
//! between steps (state corruption), then verifies the healed trajectory is
//! bitwise identical to the corruption-free baseline — per statistic *and*
//! per voxel. GPU rows check the same machinery on the second executor.
//!
//! The cells chart the detection lattice:
//!   - batch CRC64 heals payload flips in-barrier (detection latency 0);
//!   - the end-of-step seal scrub catches state flips one step later and
//!     takes the rollback tier (latency 1 on the curves);
//!   - the ABFT invariant audit runs every `audit_period` steps as the
//!     semantic backstop, and its cost is metered via `audits_run`.
//!
//! Corruption-free cells double as the false-positive gate: at every audit
//! period they must produce zero integrity records, zero retransmits and
//! zero rollbacks.
//!
//! `--json <path>` writes the curves (`BENCH_sdc_sweep.json` by
//! convention); `--smoke` shrinks the grid for CI.

use pgas::fault::CorruptionKind;
use pgas::{FaultPlan, FaultRates};
use simcov_bench::json::{json_path_from_args, write_json, Json};
use simcov_bench::report::Table;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_core::stats::TimeSeries;
use simcov_core::world::World;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::{Executor, RecoveryPolicy, Simulation};
use simcov_gpu::{GpuSim, GpuSimConfig};

const RANKS: usize = 4;
const SEED: u64 = 0x5DC0;

fn params(smoke: bool) -> SimParams {
    if smoke {
        SimParams::test_config(GridDims::new2d(32, 32), 60, 8, 7)
    } else {
        SimParams::test_config(GridDims::new2d(48, 48), 120, 8, 7)
    }
}

/// What one sweep cell measured.
struct Cell {
    executor: &'static str,
    corruption_rate: f64,
    audit_period: u64,
    corrupt_batches: u64,
    corruptions_landed: u64,
    retransmits: u64,
    integrity_bytes: u64,
    payload_heals: usize,
    state_detections: usize,
    checkpoint_quarantines: usize,
    detection_latency_mean: f64,
    detection_latency_max: u64,
    rollbacks: usize,
    replayed_steps: u64,
    backoff_ns: u64,
    scrubs_run: u64,
    audits_run: u64,
    identical: bool,
}

impl Cell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("executor", Json::from(self.executor)),
            ("corruption_rate", Json::from(self.corruption_rate)),
            ("audit_period", Json::from(self.audit_period)),
            ("corrupt_batches", Json::from(self.corrupt_batches)),
            ("corruptions_landed", Json::from(self.corruptions_landed)),
            ("retransmits", Json::from(self.retransmits)),
            ("integrity_bytes", Json::from(self.integrity_bytes)),
            ("payload_heals", Json::from(self.payload_heals)),
            ("state_detections", Json::from(self.state_detections)),
            (
                "checkpoint_quarantines",
                Json::from(self.checkpoint_quarantines),
            ),
            (
                "detection_latency_mean",
                Json::from(self.detection_latency_mean),
            ),
            (
                "detection_latency_max",
                Json::from(self.detection_latency_max),
            ),
            ("rollbacks", Json::from(self.rollbacks)),
            ("replayed_steps", Json::from(self.replayed_steps)),
            ("backoff_ns", Json::from(self.backoff_ns)),
            ("scrubs_run", Json::from(self.scrubs_run)),
            ("audits_run", Json::from(self.audits_run)),
            ("identical_to_corruption_free", Json::from(self.identical)),
        ])
    }
}

struct Baseline {
    history: TimeSeries,
    world: World,
}

fn plan(rate: f64, horizon: u64) -> FaultPlan {
    let rates = FaultRates {
        payload_corruption: rate,
        state_corruption: rate,
        ..FaultRates::default()
    };
    FaultPlan::seeded(SEED, &rates, RANKS, horizon)
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        checkpoint_period: 8,
        ..RecoveryPolicy::default()
    }
}

fn sweep_cpu(smoke: bool, rate: f64, audit_period: u64, baseline: &Baseline) -> Cell {
    let p = params(smoke);
    // 3 supersteps per CPU step.
    let horizon = p.steps * 3;
    let mut sim = CpuSim::new(
        CpuSimConfig::new(p, RANKS)
            .with_fault_plan(plan(rate, horizon))
            .with_recovery(policy())
            .with_audit_period(audit_period),
    )
    .expect("valid sweep config");
    sim.run()
        .expect("the healing ladder must absorb every flip");
    collect("cpu", rate, audit_period, &sim, baseline)
}

fn sweep_gpu(smoke: bool, rate: f64, audit_period: u64, baseline: &Baseline) -> Cell {
    let p = params(smoke);
    // 2 supersteps per GPU step.
    let horizon = p.steps * 2;
    let mut sim = GpuSim::new(
        GpuSimConfig::new(p, RANKS)
            .with_fault_plan(plan(rate, horizon))
            .with_recovery(policy())
            .with_audit_period(audit_period),
    )
    .expect("valid sweep config");
    sim.run()
        .expect("the healing ladder must absorb every flip");
    collect("gpu", rate, audit_period, &sim, baseline)
}

fn collect<E: Executor>(
    executor: &'static str,
    rate: f64,
    audit_period: u64,
    sim: &E,
    baseline: &Baseline,
) -> Cell {
    let cc = sim.comm_counters();
    let log = &sim.core().integrity_log;
    let recoveries = sim.recovery_log();
    let (scrubs, audits) = sim
        .core()
        .integrity
        .as_ref()
        .map(|m| (m.scrubs_run, m.audits_run))
        .unwrap_or_default();

    let latencies: Vec<u64> = log.iter().map(|r| r.step - r.injected_step).collect();
    let latency_mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let count = |k: CorruptionKind| log.iter().filter(|r| r.kind == k).count();

    let identical = baseline.history == *sim.history();
    assert!(
        identical,
        "{executor} rate {rate} period {audit_period}: healed statistics diverged"
    );
    if let Some((idx, why)) = baseline.world.first_difference(&sim.assemble_world()) {
        panic!("{executor} rate {rate} period {audit_period}: healed state diverged at voxel {idx}: {why}");
    }
    if rate == 0.0 {
        // The false-positive gate: a clean run must stay silent at every
        // audit period.
        assert!(
            log.is_empty() && recoveries.is_empty() && cc.retransmits == 0,
            "{executor} period {audit_period}: false positive on a clean run \
             ({} records, {} rollbacks, {} retransmits)",
            log.len(),
            recoveries.len(),
            cc.retransmits
        );
    }

    Cell {
        executor,
        corruption_rate: rate,
        audit_period,
        corrupt_batches: cc.corrupt_batches,
        corruptions_landed: cc.corruptions_landed,
        retransmits: cc.retransmits,
        integrity_bytes: cc.integrity_bytes,
        payload_heals: count(CorruptionKind::Payload),
        state_detections: count(CorruptionKind::State),
        checkpoint_quarantines: count(CorruptionKind::Checkpoint),
        detection_latency_mean: latency_mean,
        detection_latency_max: latencies.iter().copied().max().unwrap_or(0),
        rollbacks: recoveries.len(),
        replayed_steps: recoveries.iter().map(|r| r.replayed_steps).sum(),
        backoff_ns: recoveries.iter().map(|r| r.backoff_ns).sum(),
        scrubs_run: scrubs,
        audits_run: audits,
        identical,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let p = params(smoke);
    println!(
        "SDC sweep{}: {}x{} voxels, {} steps, {RANKS} ranks, seed {SEED:#x}",
        if smoke { " (smoke)" } else { "" },
        p.dims.x,
        p.dims.y,
        p.steps
    );

    let mut cpu_base = CpuSim::new(CpuSimConfig::new(p.clone(), RANKS)).expect("valid config");
    cpu_base.run().expect("corruption-free baseline");
    let cpu_baseline = Baseline {
        history: cpu_base.history().clone(),
        world: cpu_base.gather_world(),
    };

    let mut gpu_base = GpuSim::new(GpuSimConfig::new(p, RANKS)).expect("valid config");
    gpu_base.run().expect("corruption-free baseline");
    let gpu_baseline = Baseline {
        history: gpu_base.history().clone(),
        world: gpu_base.gather_world(),
    };
    assert_eq!(
        cpu_baseline.history, gpu_baseline.history,
        "executors must agree before the sweep means anything"
    );

    let (rates, periods): (&[f64], &[u64]) = if smoke {
        (&[0.0, 0.004], &[1, 8])
    } else {
        (&[0.0, 0.002, 0.008], &[1, 4, 16])
    };

    let mut cells = Vec::new();
    for &rate in rates {
        for &period in periods {
            cells.push(sweep_cpu(smoke, rate, period, &cpu_baseline));
        }
    }
    // The GPU rows: one clean (false-positive gate) and one corrupted.
    cells.push(sweep_gpu(smoke, 0.0, periods[0], &gpu_baseline));
    cells.push(sweep_gpu(
        smoke,
        rates[rates.len() - 1],
        periods[periods.len() - 1],
        &gpu_baseline,
    ));

    let mut table = Table::new(&[
        "executor",
        "rate",
        "audit period",
        "batches hit",
        "landed",
        "retransmits",
        "state hits",
        "latency (mean/max)",
        "rollbacks",
        "replayed",
        "audits",
        "identical",
    ]);
    for c in &cells {
        table.row(vec![
            c.executor.to_string(),
            format!("{:.4}", c.corruption_rate),
            c.audit_period.to_string(),
            c.corrupt_batches.to_string(),
            c.corruptions_landed.to_string(),
            c.retransmits.to_string(),
            c.state_detections.to_string(),
            format!(
                "{:.2}/{}",
                c.detection_latency_mean, c.detection_latency_max
            ),
            c.rollbacks.to_string(),
            c.replayed_steps.to_string(),
            c.audits_run.to_string(),
            c.identical.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Every healed run is bitwise identical to its corruption-free baseline\n\
         (statistics and per-voxel state); clean cells produced zero integrity\n\
         events at every audit period."
    );

    if let Some(path) = json_path_from_args() {
        write_json(
            &path,
            &Json::obj([
                ("suite", Json::from("sdc_sweep")),
                ("smoke", Json::from(smoke)),
                ("ranks", Json::from(RANKS)),
                ("seed", Json::from(SEED)),
                ("rows", Json::Arr(cells.iter().map(Cell::to_json).collect())),
            ]),
        );
    }
}
