//! SDC sweep: silent-data-corruption rate × integrity audit period on the
//! self-healing runtime.
//!
//! For every (corruption rate, audit period) cell the sweep runs the CPU
//! executor under a seeded fault plan that flips bits both in in-flight
//! coalesced batches (payload corruption) and in rank-resident state
//! between steps (state corruption), then verifies the healed trajectory is
//! bitwise identical to the corruption-free baseline — per statistic *and*
//! per voxel. GPU rows check the same machinery on the second executor.
//!
//! The cells chart the detection lattice:
//!   - batch CRC64 heals payload flips in-barrier (detection latency 0);
//!   - the end-of-step seal scrub catches state flips one step later and
//!     takes the rollback tier (latency 1 on the curves);
//!   - the ABFT invariant audit runs every `audit_period` steps as the
//!     semantic backstop, and its cost is metered via `audits_run`.
//!
//! Corruption-free cells double as the false-positive gate: at every audit
//! period they must produce zero integrity records, zero retransmits and
//! zero rollbacks.
//!
//! The cells run as [`JobSpec`]s on the sweep job server (worlds captured
//! for the per-voxel comparison); per-job streamed records land under
//! `target/sweep/sdc_sweep/`.
//!
//! `--json <path>` writes the curves (`BENCH_sdc_sweep.json` by
//! convention); `--smoke` shrinks the grid for CI; `--seed N` overrides
//! the fault-plan seed.

use pgas::fault::CorruptionKind;
use simcov_bench::cli::CommonFlags;
use simcov_bench::json::{write_json, Json};
use simcov_bench::report::Table;
use simcov_core::grid::GridDims;
use simcov_sweep::{
    ExecutorKind, FaultSpec, JobReport, JobSpec, RecoverySpec, RunSpec, SweepConfig, SweepServer,
};
use std::collections::HashMap;

const RANKS: usize = 4;
const DEFAULT_SEED: u64 = 0x5DC0;

fn run_spec(executor: ExecutorKind, smoke: bool) -> RunSpec {
    let (dims, steps) = if smoke {
        (GridDims::new2d(32, 32), 60)
    } else {
        (GridDims::new2d(48, 48), 120)
    };
    RunSpec::test(executor, dims, steps, 8, 7).with_units(RANKS)
}

/// The sweep cell for `executor` at one (corruption rate, audit period)
/// point, as a job submission. Worlds are captured: the healed run must
/// match the baseline per voxel, not just per statistic.
fn cell_job(executor: ExecutorKind, smoke: bool, seed: u64, rate: f64, period: u64) -> JobSpec {
    let mut run = run_spec(executor, smoke)
        .with_fault(FaultSpec {
            seed,
            rates: pgas::FaultRates {
                payload_corruption: rate,
                state_corruption: rate,
                ..pgas::FaultRates::default()
            },
        })
        .with_recovery(RecoverySpec {
            checkpoint_period: 8,
            ..RecoverySpec::default()
        });
    run.audit_period = Some(period);
    JobSpec::new(cell_name(executor, rate, period), run).with_capture_world()
}

fn cell_name(executor: ExecutorKind, rate: f64, period: u64) -> String {
    format!("{}_c{rate}_a{period}", executor.name())
}

/// What one sweep cell measured.
struct Cell {
    executor: &'static str,
    corruption_rate: f64,
    audit_period: u64,
    corrupt_batches: u64,
    corruptions_landed: u64,
    retransmits: u64,
    integrity_bytes: u64,
    payload_heals: usize,
    state_detections: usize,
    checkpoint_quarantines: usize,
    detection_latency_mean: f64,
    detection_latency_max: u64,
    rollbacks: usize,
    replayed_steps: u64,
    backoff_ns: u64,
    scrubs_run: u64,
    audits_run: u64,
    identical: bool,
}

impl Cell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("executor", Json::from(self.executor)),
            ("corruption_rate", Json::from(self.corruption_rate)),
            ("audit_period", Json::from(self.audit_period)),
            ("corrupt_batches", Json::from(self.corrupt_batches)),
            ("corruptions_landed", Json::from(self.corruptions_landed)),
            ("retransmits", Json::from(self.retransmits)),
            ("integrity_bytes", Json::from(self.integrity_bytes)),
            ("payload_heals", Json::from(self.payload_heals)),
            ("state_detections", Json::from(self.state_detections)),
            (
                "checkpoint_quarantines",
                Json::from(self.checkpoint_quarantines),
            ),
            (
                "detection_latency_mean",
                Json::from(self.detection_latency_mean),
            ),
            (
                "detection_latency_max",
                Json::from(self.detection_latency_max),
            ),
            ("rollbacks", Json::from(self.rollbacks)),
            ("replayed_steps", Json::from(self.replayed_steps)),
            ("backoff_ns", Json::from(self.backoff_ns)),
            ("scrubs_run", Json::from(self.scrubs_run)),
            ("audits_run", Json::from(self.audits_run)),
            ("identical_to_corruption_free", Json::from(self.identical)),
        ])
    }
}

fn collect(
    executor: ExecutorKind,
    rate: f64,
    audit_period: u64,
    report: &JobReport,
    baseline: &JobReport,
) -> Cell {
    let name = executor.name();
    let cc = &report.comm;
    let log = &report.integrity;
    let recoveries = &report.recoveries;

    let latencies: Vec<u64> = log.iter().map(|r| r.step - r.injected_step).collect();
    let latency_mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let count = |k: CorruptionKind| log.iter().filter(|r| r.kind == k).count();

    let identical = baseline.history == report.history;
    assert!(
        identical,
        "{name} rate {rate} period {audit_period}: healed statistics diverged"
    );
    let base_world = baseline
        .world
        .as_ref()
        .expect("baseline captures its world");
    let cell_world = report.world.as_ref().expect("cell captures its world");
    if let Some((idx, why)) = base_world.first_difference(cell_world) {
        panic!(
            "{name} rate {rate} period {audit_period}: healed state diverged at voxel {idx}: {why}"
        );
    }
    if rate == 0.0 {
        // The false-positive gate: a clean run must stay silent at every
        // audit period.
        assert!(
            log.is_empty() && recoveries.is_empty() && cc.retransmits == 0,
            "{name} period {audit_period}: false positive on a clean run \
             ({} records, {} rollbacks, {} retransmits)",
            log.len(),
            recoveries.len(),
            cc.retransmits
        );
    }

    Cell {
        executor: name,
        corruption_rate: rate,
        audit_period,
        corrupt_batches: cc.corrupt_batches,
        corruptions_landed: cc.corruptions_landed,
        retransmits: cc.retransmits,
        integrity_bytes: cc.integrity_bytes,
        payload_heals: count(CorruptionKind::Payload),
        state_detections: count(CorruptionKind::State),
        checkpoint_quarantines: count(CorruptionKind::Checkpoint),
        detection_latency_mean: latency_mean,
        detection_latency_max: latencies.iter().copied().max().unwrap_or(0),
        rollbacks: recoveries.len(),
        replayed_steps: recoveries.iter().map(|r| r.replayed_steps).sum(),
        backoff_ns: recoveries.iter().map(|r| r.backoff_ns).sum(),
        scrubs_run: report.integrity_stats.scrubs_run,
        audits_run: report.integrity_stats.audits_run,
        identical,
    }
}

fn main() {
    let flags = CommonFlags::parse("usage: sdc_sweep [--json PATH] [--smoke] [--seed N]");
    let smoke = flags.smoke;
    let seed = flags.seed.unwrap_or(DEFAULT_SEED);
    let p = run_spec(ExecutorKind::Cpu, smoke).params();
    println!(
        "SDC sweep{}: {}x{} voxels, {} steps, {RANKS} ranks, seed {seed:#x}",
        if smoke { " (smoke)" } else { "" },
        p.dims.x,
        p.dims.y,
        p.steps
    );

    let out_dir = std::path::Path::new("target/sweep/sdc_sweep");
    let _ = std::fs::remove_dir_all(out_dir); // one-shot: never resume old cells
    let server =
        SweepServer::start(SweepConfig::new(out_dir).with_workers(2)).expect("start sweep server");

    let (rates, periods): (&[f64], &[u64]) = if smoke {
        (&[0.0, 0.004], &[1, 8])
    } else {
        (&[0.0, 0.002, 0.008], &[1, 4, 16])
    };
    // The GPU rows: one clean (false-positive gate) and one corrupted.
    let gpu_cells = [
        (0.0, periods[0]),
        (rates[rates.len() - 1], periods[periods.len() - 1]),
    ];

    server.submit(
        JobSpec::new("baseline_cpu", run_spec(ExecutorKind::Cpu, smoke)).with_capture_world(),
    );
    server.submit(
        JobSpec::new("baseline_gpu", run_spec(ExecutorKind::Gpu, smoke)).with_capture_world(),
    );
    for &rate in rates {
        for &period in periods {
            server.submit(cell_job(ExecutorKind::Cpu, smoke, seed, rate, period));
        }
    }
    for (rate, period) in gpu_cells {
        server.submit(cell_job(ExecutorKind::Gpu, smoke, seed, rate, period));
    }

    let reports: HashMap<String, JobReport> = server
        .join()
        .into_iter()
        .map(|(name, status)| {
            let report = status
                .report()
                .unwrap_or_else(|| panic!("job {name:?} must complete, got {status:?}"))
                .clone();
            (name, report)
        })
        .collect();
    let cpu_baseline = &reports["baseline_cpu"];
    let gpu_baseline = &reports["baseline_gpu"];
    assert_eq!(
        cpu_baseline.history, gpu_baseline.history,
        "executors must agree before the sweep means anything"
    );

    let mut cells = Vec::new();
    for &rate in rates {
        for &period in periods {
            let name = cell_name(ExecutorKind::Cpu, rate, period);
            cells.push(collect(
                ExecutorKind::Cpu,
                rate,
                period,
                &reports[&name],
                cpu_baseline,
            ));
        }
    }
    for (rate, period) in gpu_cells {
        let name = cell_name(ExecutorKind::Gpu, rate, period);
        cells.push(collect(
            ExecutorKind::Gpu,
            rate,
            period,
            &reports[&name],
            gpu_baseline,
        ));
    }

    let mut table = Table::new(&[
        "executor",
        "rate",
        "audit period",
        "batches hit",
        "landed",
        "retransmits",
        "state hits",
        "latency (mean/max)",
        "rollbacks",
        "replayed",
        "audits",
        "identical",
    ]);
    for c in &cells {
        table.row(vec![
            c.executor.to_string(),
            format!("{:.4}", c.corruption_rate),
            c.audit_period.to_string(),
            c.corrupt_batches.to_string(),
            c.corruptions_landed.to_string(),
            c.retransmits.to_string(),
            c.state_detections.to_string(),
            format!(
                "{:.2}/{}",
                c.detection_latency_mean, c.detection_latency_max
            ),
            c.rollbacks.to_string(),
            c.replayed_steps.to_string(),
            c.audits_run.to_string(),
            c.identical.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Every healed run is bitwise identical to its corruption-free baseline\n\
         (statistics and per-voxel state); clean cells produced zero integrity\n\
         events at every audit period."
    );

    if let Some(path) = flags.json {
        write_json(
            &path,
            &Json::obj([
                ("suite", Json::from("sdc_sweep")),
                ("smoke", Json::from(smoke)),
                ("ranks", Json::from(RANKS)),
                ("seed", Json::from(seed)),
                ("rows", Json::Arr(cells.iter().map(Cell::to_json).collect())),
            ]),
        );
    }
}
