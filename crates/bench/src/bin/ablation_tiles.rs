//! Ablation: memory-tile side and activity-check period (§3.2).
//!
//! The paper fixes one tiling configuration; this sweep shows the
//! trade-off it balances: small tiles track the active region tightly but
//! spend more on tile checks and ghost-tile overhead; large tiles waste
//! update work on mostly-inactive tiles. The check period is bounded by
//! the tile side (safety of the one-tile activation buffer).
//!
//! `--json <path>` additionally writes the sweep rows as JSON.

use gpusim::{CostModel, GPU_A100};
use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::{paper, scale_from_env, Experiment, ScaledExperiment};
use simcov_bench::json::{write_json, Json};
use simcov_bench::report::{banner, fmt_secs, Table};
use simcov_driver::Simulation;
use simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

fn main() {
    let flags = CommonFlags::parse("usage: ablation_tiles [--json PATH]");
    let scale = scale_from_env().max(64); // keep the sweep cheap
    println!(
        "{}",
        banner(
            "Ablation: tile side & check period (Combined variant)",
            scale
        )
    );
    let e = Experiment {
        name: "ablation",
        grid_side: paper::STRONG_GRID,
        num_foi: paper::STRONG_FOI,
        steps: paper::STEPS,
        machine: paper::STRONG_MACHINES[0],
    };
    let model = CostModel::default();
    let mut table = Table::new(&[
        "tile side",
        "check period",
        "update (s)",
        "tile checks (s)",
        "total compute (s)",
        "voxel updates",
    ]);
    let mut rows = Vec::new();
    for (tile, period) in [(2usize, 2u64), (4, 4), (8, 8), (16, 16), (8, 2), (16, 4)] {
        let se = ScaledExperiment::new(e, scale, 1);
        let cfg = GpuSimConfig::new(se.params, 4)
            .with_variant(GpuVariant::Combined)
            .with_tile_side(tile)
            .with_check_period(period);
        let mut sim = GpuSim::new(cfg).expect("valid config");
        sim.run().expect("healthy run");
        let c = sim.max_device_counters().extrapolate(scale as f64);
        let b = model.device_breakdown(&GPU_A100, &c);
        table.row(vec![
            tile.to_string(),
            period.to_string(),
            fmt_secs(b.update_s),
            fmt_secs(b.tile_s),
            fmt_secs(b.total()),
            c.update.elements.to_string(),
        ]);
        rows.push(Json::obj([
            ("tile_side", Json::from(tile)),
            ("check_period", Json::from(period)),
            ("update_s", Json::from(b.update_s)),
            ("tile_checks_s", Json::from(b.tile_s)),
            ("total_compute_s", Json::from(b.total())),
            ("voxel_updates", Json::from(c.update.elements)),
        ]));
    }
    println!("{}", table.render());
    println!(
        "Expected: update work shrinks with tile side down to the activity granularity,\n\
         while tile-check cost grows as the period (≤ tile side) shortens."
    );
    if let Some(path) = flags.json {
        write_json(&path, &Json::obj([("rows", Json::Arr(rows))]));
    }
}
