//! Fig. 5 — correctness: CPU-vs-GPU aggregate statistics as time series
//! over a simulated infection, across several seeds (the paper's 5 trials),
//! with min/mean/max envelopes for virus count, tissue T cells and
//! apoptotic epithelial cells.

use simcov_bench::configs::{paper, scale_from_env, trials_from_env, ScaledExperiment};
use simcov_bench::report::banner;
use simcov_bench::runner::{run_cpu, run_gpu};
use simcov_core::stats::{envelope, Metric, TimeSeries};
use simcov_gpu::GpuVariant;

fn main() {
    let scale = scale_from_env();
    let trials = trials_from_env();
    println!(
        "{}",
        banner("Fig 5: CPU vs GPU aggregate statistics over a simulated infection", scale)
    );
    let m = paper::CORRECTNESS.machine;
    let mut cpu_runs: Vec<TimeSeries> = Vec::new();
    let mut gpu_runs: Vec<TimeSeries> = Vec::new();
    for trial in 0..trials {
        let se = ScaledExperiment::new(paper::CORRECTNESS, scale, 1000 + trial as u64);
        eprintln!("trial {trial}: CPU x{} ...", m.cpus);
        cpu_runs.push(run_cpu(se.params.clone(), m.cpus, scale).history);
        eprintln!("trial {trial}: GPU x{} ...", m.gpus);
        gpu_runs.push(run_gpu(se.params, m.gpus, GpuVariant::Combined, scale).history);
    }

    for (panel, metric) in [
        ("A) Virus", Metric::Virions),
        ("B) Tissue T Cells", Metric::TCellsTissue),
        ("C) Apoptotic Epithelial Cells", Metric::EpiApoptotic),
    ] {
        let cpu_env = envelope(&cpu_runs, metric);
        let gpu_env = envelope(&gpu_runs, metric);
        println!("--- {panel} ({}) ---", metric.name());
        println!(
            "{:>8}  {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
            "step", "cpu_min", "cpu_mean", "cpu_max", "gpu_min", "gpu_mean", "gpu_max"
        );
        let n = cpu_env.len();
        let stride = (n / 16).max(1);
        for i in (0..n).step_by(stride) {
            let c = cpu_env[i];
            let g = gpu_env[i];
            println!(
                "{:>8}  {:>12.1} {:>12.1} {:>12.1}   {:>12.1} {:>12.1} {:>12.1}",
                i, c.0, c.1, c.2, g.0, g.1, g.2
            );
        }
        // Mean-trajectory agreement (identical per seed by construction —
        // the stronger form of the paper's statistical agreement).
        let max_rel = cpu_env
            .iter()
            .zip(&gpu_env)
            .map(|(c, g)| {
                let denom = c.1.abs().max(g.1.abs()).max(1.0);
                (c.1 - g.1).abs() / denom
            })
            .fold(0.0f64, f64::max);
        println!("max relative mean deviation CPU vs GPU: {max_rel:.2e}\n");
    }
    println!(
        "Expected shape (paper Fig 5): CPU and GPU trajectories track each other closely\n\
         through the full infection (growth, T-cell response, clearance); envelopes overlap."
    );
}
