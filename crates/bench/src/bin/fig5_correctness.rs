//! Fig. 5 — correctness: CPU-vs-GPU aggregate statistics as time series
//! over a simulated infection, across several seeds (the paper's 5 trials),
//! with min/mean/max envelopes for virus count, tissue T cells and
//! apoptotic epithelial cells.
//!
//! `--json <path>` additionally writes the per-panel envelopes as JSON.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::{scale_from_env, trials_from_env};
use simcov_bench::experiments::{correctness_trials, fig5_panels, fig5_to_json, render_fig5};
use simcov_bench::json::{write_json, Json};

fn main() {
    let flags = CommonFlags::parse("usage: fig5_correctness [--json PATH]");
    let scale = scale_from_env();
    let trials = trials_from_env();
    let t = correctness_trials(scale, trials, 1000);
    let panels = fig5_panels(&t);
    println!("{}", render_fig5(scale, &panels));
    if let Some(path) = flags.json {
        let doc = Json::obj([
            ("trials", Json::from(trials)),
            ("panels", fig5_to_json(&panels)),
        ]);
        write_json(&path, &doc);
    }
}
