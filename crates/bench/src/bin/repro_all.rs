//! Run the complete reproduction suite (every table and figure) in order.
//! `SIMCOV_SCALE` / `SIMCOV_TRIALS` control fidelity vs. runtime.

use std::process::Command;

fn main() {
    let bins = [
        "table1_configs",
        "fig4_breakdown",
        "fig5_correctness",
        "table2_agreement",
        "fig6_strong",
        "fig7_weak",
        "fig8_foi",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for b in bins {
        println!("\n################ {b} ################\n");
        let status = Command::new(dir.join(b))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {b}: {e}"));
        assert!(status.success(), "{b} failed");
    }
}
