//! Run the complete reproduction suite (every table and figure) in order,
//! in-process, and write the composite machine-readable artifact
//! `BENCH_results.json` (override the path with `--json <path>`).
//! `SIMCOV_SCALE` / `SIMCOV_TRIALS` control fidelity vs. runtime.
//! `--metrics-out <path>` additionally writes the per-section wall-clock
//! gauges (and anything the experiments put in the global registry) as
//! Prometheus text exposition, so suite runtime can be scraped/plotted
//! alongside the runtime telemetry.
//!
//! The artifact carries every Fig 4/6/7/8 and Table 1/2 number the text
//! report prints, plus the measured wall-clock seconds of each section —
//! simulated (cost-model) seconds and real seconds are deliberately both
//! present so a regression in either is visible.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::{scale_from_env, trials_from_env};
use simcov_bench::experiments::{
    correctness_trials, fig4, fig5_panels, fig5_to_json, fig6, fig7, fig8, render_fig5,
    render_table2, table1_to_json, table2_rows, table2_to_json,
};
use simcov_bench::json::{write_json, Json};
use simcov_telemetry::{prometheus, Registry};
use std::time::Instant;

/// Run one section, printing its banner-separated report and returning its
/// JSON record alongside the wall-clock seconds it took. The wall time is
/// also published to the global metrics registry so `--metrics-out` can
/// export it.
fn section(name: &str, run: impl FnOnce() -> (String, Json)) -> (Json, f64) {
    println!("\n################ {name} ################\n");
    let t0 = Instant::now();
    let (report, json) = run();
    let wall = t0.elapsed().as_secs_f64();
    println!("{report}");
    Registry::global()
        .gauge_with(
            "repro_section_wall_seconds",
            "wall-clock seconds spent in one repro_all section",
            &[("section", name)],
        )
        .set(wall);
    let mut record = Json::obj([("wall_seconds", Json::from(wall))]);
    record.push("results", json);
    (record, wall)
}

fn main() {
    let scale = scale_from_env();
    let trials = trials_from_env();
    let flags = CommonFlags::parse("usage: repro_all [--json PATH] [--metrics-out PATH]");
    let path = flags
        .json
        .unwrap_or_else(|| "BENCH_results.json".to_string());
    let metrics_path = flags.metrics_out;
    let suite_t0 = Instant::now();

    let mut doc = Json::obj([
        ("suite", Json::from("simcov-gpu-repro")),
        ("scale", Json::from(scale)),
        ("trials", Json::from(trials)),
    ]);

    let (table1, _) = section("table1_configs", || {
        (
            "(configuration matrix; see JSON)".to_string(),
            table1_to_json(),
        )
    });
    let (fig4_j, _) = section("fig4_breakdown", || {
        let r = fig4(scale);
        (r.render(), r.to_json())
    });
    // Fig 5 and Table 2 are two views of the same §4.1 trials; run them
    // once (Fig 5's seed convention) and report both.
    let (fig5_j, _) = section("fig5_correctness", || {
        let t = correctness_trials(scale, trials, 1000);
        let panels = fig5_panels(&t);
        let rows = table2_rows(&t);
        let mut report = render_fig5(scale, &panels);
        report.push('\n');
        report.push_str(&render_table2(scale, &rows));
        let json = Json::obj([
            ("fig5_panels", fig5_to_json(&panels)),
            ("table2_rows", table2_to_json(&rows)),
        ]);
        (report, json)
    });
    let (fig6_j, _) = section("fig6_strong", || {
        let r = fig6(scale);
        (r.render_strong(), r.to_json())
    });
    let (fig7_j, _) = section("fig7_weak", || {
        let r = fig7(scale);
        (r.render_weak(), r.to_json())
    });
    let (fig8_j, _) = section("fig8_foi", || {
        let r = fig8(scale);
        (r.render(), r.to_json())
    });

    doc.push("table1", table1);
    doc.push("fig4", fig4_j);
    doc.push("fig5_and_table2", fig5_j);
    doc.push("fig6", fig6_j);
    doc.push("fig7", fig7_j);
    doc.push("fig8", fig8_j);
    let total = suite_t0.elapsed().as_secs_f64();
    doc.push("total_wall_seconds", total);
    write_json(&path, &doc);

    if let Some(mpath) = metrics_path {
        let reg = Registry::global();
        reg.gauge(
            "repro_total_wall_seconds",
            "wall-clock seconds for the whole repro_all suite",
        )
        .set(total);
        reg.gauge("repro_scale", "SIMCOV_SCALE fidelity knob for this run")
            .set(scale as f64);
        match std::fs::write(&mpath, prometheus::render(reg)) {
            Ok(()) => eprintln!("prometheus metrics -> {mpath}"),
            Err(e) => {
                eprintln!("cannot write {mpath}: {e}");
                std::process::exit(2);
            }
        }
    }
}
