//! Benchmark-regression gate over the hot kernels.
//!
//! Runs the in-house microbench harness over the paths this codebase
//! optimizes — the diffusion stencil (naive per-neighbor indexing vs the
//! SoA [`StencilDeltas`] fast path vs the wide-lane chunked kernel), the
//! halo exchange (per-message delivery vs the coalesced [`Mailboxes`]
//! barrier), exact summation, a small end-to-end serial step, and a
//! truly-concurrent 4-rank CPU run on a pinned worker pool (`--threads`,
//! default 2) — then:
//!
//! 1. writes the results as a JSON artifact (`--json`, default
//!    `BENCH_perf.json`),
//! 2. checks the *in-run* speedups: the wide-lane diffusion kernel must
//!    beat the naive sweep by [`MIN_DIFFUSION_SPEEDUP`] and the coalesced
//!    exchange must beat per-message delivery by [`MIN_HALO_SPEEDUP`]
//!    (machine-independent — both sides measured in the same process),
//! 3. compares each kernel's best (min) time against the committed
//!    baseline (`--baseline`, default `BENCH_baseline.json`) and fails on
//!    regressions beyond the tolerance band (`--tolerance`, default 0.25).
//!    A failing pass is re-measured up to [`MAX_NOISE_RETRIES`] times with
//!    the per-kernel min merged across passes: background load can only
//!    inflate a min-based timing, so a kernel that stays over the limit on
//!    every pass is a real regression, not a noise burst.
//!
//! Every fast path is asserted bitwise identical to its naive counterpart
//! in-run before it is timed, so the gate can never trade correctness for
//! speed silently.
//!
//! `--update-baseline` rewrites the baseline from this run and skips the
//! comparison; `--smoke` cuts the sample count for CI (batch calibration
//! still targets ≥ 1 ms per batch, so minima stay comparable). Kernels
//! present in the run but absent from the baseline warn and pass, so adding
//! a benchmark does not require regenerating the baseline in the same
//! commit.
//!
//! The gate also measures the telemetry subsystem's own cost: the same
//! deterministic CPU e2e run is timed with spans/health off and on as an
//! interleaved pair (`Bench::bench_pair`), and the min/min ratio must stay
//! within [`MAX_TELEMETRY_OVERHEAD`] (the ≤15% instrumentation budget).
//! Interleaving keeps the ratio honest on shared machines, where
//! a background burst inside one side's sampling window would otherwise
//! read as instrumentation cost. `--metrics-out PATH` writes the gate's numbers
//! (plus the instrumented run's own registry) as Prometheus text
//! exposition.

use pgas::{Mailboxes, Outbox, WorkPool};
use simcov_bench::cli::{self, CommonFlags};
use simcov_bench::json::{write_json, Json};
use simcov_bench::microbench::{Bench, BenchResult};
use simcov_core::diffusion::{diffuse_voxel, DiffuseCoeffs};
use simcov_core::exact::ExactSum;
use simcov_core::fields::Field;
use simcov_core::grid::GridDims;
use simcov_core::lanes;
use simcov_core::params::SimParams;
use simcov_core::serial::SerialSim;
use simcov_core::soa::StencilDeltas;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::Simulation;
use simcov_telemetry::{prometheus, Telemetry};

/// The wide-lane diffusion kernel must hold this speedup over the naive
/// per-neighbor sweep (raised from the 1.5x floor the scalar stencil path
/// cleared; the chunked lane kernel measures well above it).
const MIN_DIFFUSION_SPEEDUP: f64 = 1.8;

/// The coalesced halo exchange must hold this speedup over per-message
/// delivery (measured ~3.5x; the floor leaves noise headroom).
const MIN_HALO_SPEEDUP: f64 = 2.0;

/// Instrumentation budget: a telemetry-on e2e run may cost at most 15% more
/// wall clock than the identical telemetry-off run. The measured ratio sits
/// near 1.05x when the machine is idle, so the band leaves ~10 points of
/// headroom for shared-machine cache/bandwidth contention (which taxes the
/// instrumented side harder) while still catching real regressions — a span
/// accidentally opened per voxel or per message costs multiples, not
/// percent.
const MAX_TELEMETRY_OVERHEAD: f64 = 1.15;

struct Cli {
    json: String,
    baseline: String,
    tolerance: f64,
    update_baseline: bool,
    smoke: bool,
    metrics_out: Option<String>,
    /// Worker count for the parallel-rank e2e kernel (0 = inline). CI pins
    /// this so the gate measures a reproducible concurrent configuration.
    threads: usize,
}

const USAGE: &str = "usage: perf_gate [--json PATH] [--baseline PATH] \
                     [--tolerance FRAC] [--update-baseline] [--smoke] \
                     [--threads N] [--metrics-out PATH]";

fn parse_cli() -> Cli {
    let (common, rest) = CommonFlags::parse_with_rest();
    let mut cli = Cli {
        json: common.json.unwrap_or_else(|| "BENCH_perf.json".to_string()),
        baseline: "BENCH_baseline.json".to_string(),
        tolerance: 0.25,
        update_baseline: false,
        smoke: common.smoke,
        metrics_out: common.metrics_out,
        threads: common.threads.unwrap_or(2),
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => cli.baseline = cli::expect_value(&a, it.next()),
            "--tolerance" => cli.tolerance = cli::parse_value(&a, it.next()),
            "--update-baseline" => cli.update_baseline = true,
            other => cli::die_unknown(other, USAGE),
        }
    }
    cli
}

/// Two 64×64 fields with mixed magnitudes, the diffusion workload.
fn diffusion_inputs(dims: GridDims) -> (Field, Field) {
    let n = dims.nvoxels();
    let mut a = Field::zeros(n);
    let mut b = Field::zeros(n);
    for i in 0..n {
        a.set(i, ((i % 13) as f32) * 0.37 + 0.01);
        b.set(i, ((i % 7) as f32) * 1.21);
    }
    (a, b)
}

/// Pre-PR diffusion shape: every voxel walks its Moore neighborhood through
/// the bounds-checked coordinate iterator.
fn diffusion_naive(dims: GridDims, a: &Field, b: &Field, out: &mut [f32]) -> f32 {
    for (v, o) in out.iter_mut().enumerate() {
        let c = dims.coord(v);
        let mut vs = 0.0f32;
        let mut cs = 0.0f32;
        let mut nvalid = 0usize;
        for u in dims.neighbors(c) {
            vs += a.get(u);
            cs += b.get(u);
            nvalid += 1;
        }
        *o = diffuse_voxel(a.get(v), vs, nvalid, 0.15, 0.004, 1e-10)
            + diffuse_voxel(b.get(v), cs, nvalid, 0.1, 0.01, 1e-10);
    }
    out[0]
}

/// SoA/tiled diffusion shape: interior voxels gather through the
/// precomputed stride table, boundary voxels keep the checked path.
fn diffusion_stencil(
    dims: GridDims,
    st: &StencilDeltas,
    a: &Field,
    b: &Field,
    out: &mut [f32],
) -> f32 {
    for (v, o) in out.iter_mut().enumerate() {
        let c = dims.coord(v);
        let (vs, cs, nvalid) = if st.is_interior(c) {
            let (vs, cs) = st.sum2(v, a, b);
            (vs, cs, st.len())
        } else {
            let mut vs = 0.0f32;
            let mut cs = 0.0f32;
            let mut nvalid = 0usize;
            for u in dims.neighbors(c) {
                vs += a.get(u);
                cs += b.get(u);
                nvalid += 1;
            }
            (vs, cs, nvalid)
        };
        *o = diffuse_voxel(a.get(v), vs, nvalid, 0.15, 0.004, 1e-10)
            + diffuse_voxel(b.get(v), cs, nvalid, 0.1, 0.01, 1e-10);
    }
    out[0]
}

/// One boundary voxel through the bounds-checked gather — shared by the
/// wide sweep for the cells its interior runs cannot cover.
fn diffusion_checked_voxel(dims: GridDims, a: &Field, b: &Field, v: usize, out: &mut [f32]) {
    let c = dims.coord(v);
    let mut vs = 0.0f32;
    let mut cs = 0.0f32;
    let mut nvalid = 0usize;
    for u in dims.neighbors(c) {
        vs += a.get(u);
        cs += b.get(u);
        nvalid += 1;
    }
    out[v] = diffuse_voxel(a.get(v), vs, nvalid, 0.15, 0.004, 1e-10)
        + diffuse_voxel(b.get(v), cs, nvalid, 0.1, 0.01, 1e-10);
}

/// Wide-lane diffusion shape: each interior row span runs through the
/// chunked [`lanes::diffuse_interior_run`] kernel ([`lanes::LANES`]-wide
/// slice gathers, one accumulator per lane, scalar tail); boundary voxels
/// keep the checked path. Bitwise identical to the naive sweep by
/// construction — asserted before timing.
fn diffusion_wide(
    dims: GridDims,
    st: &StencilDeltas,
    a: &Field,
    b: &Field,
    out: &mut [f32],
) -> f32 {
    let vc = DiffuseCoeffs {
        d: 0.15,
        decay: 0.004,
        min: 1e-10,
    };
    let cc = DiffuseCoeffs {
        d: 0.1,
        decay: 0.01,
        min: 1e-10,
    };
    let (nx, ny) = (dims.x as usize, dims.y as usize);
    for y in 0..ny {
        let row = y * nx;
        if y >= 1 && y + 1 < ny && nx >= 3 {
            diffusion_checked_voxel(dims, a, b, row, out);
            lanes::diffuse_interior_run(st, row + 1, nx - 2, a, b, vc, cc, |v, nv, nc| {
                out[v] = nv + nc
            });
            diffusion_checked_voxel(dims, a, b, row + nx - 1, out);
        } else {
            for x in 0..nx {
                diffusion_checked_voxel(dims, a, b, row + x, out);
            }
        }
    }
    out[0]
}

/// Halo-exchange message stand-in: a 32-byte POD payload (metered through
/// the blanket `WireSize` impl), typical of a packed boundary record.
type HaloMsg = [u64; 4];

const HALO_RANKS: usize = 8;
const HALO_MSGS_PER_PAIR: usize = 64;

fn fill_outboxes(obs: &mut [Outbox<HaloMsg>]) {
    for (src, ob) in obs.iter_mut().enumerate() {
        for dst in 0..HALO_RANKS {
            if dst == src {
                continue;
            }
            for k in 0..HALO_MSGS_PER_PAIR {
                ob.send(dst, [src as u64, dst as u64, k as u64, 0]);
            }
        }
    }
}

/// Pre-PR exchange shape: fresh inbox allocations every superstep, one push
/// and one metering update per logical message, single-threaded.
fn halo_per_message() -> usize {
    let mut staged: Vec<Vec<(usize, HaloMsg)>> = (0..HALO_RANKS).map(|_| Vec::new()).collect();
    for (src, out) in staged.iter_mut().enumerate() {
        for dst in 0..HALO_RANKS {
            if dst == src {
                continue;
            }
            for k in 0..HALO_MSGS_PER_PAIR {
                out.push((dst, [src as u64, dst as u64, k as u64, 0]));
            }
        }
    }
    let mut inboxes: Vec<Vec<HaloMsg>> = (0..HALO_RANKS).map(|_| Vec::new()).collect();
    let mut msgs = 0u64;
    let mut bytes = 0u64;
    for out in &staged {
        for &(dst, msg) in out {
            msgs += 1;
            bytes += std::mem::size_of::<HaloMsg>() as u64;
            inboxes[dst].push(msg);
        }
    }
    std::hint::black_box((msgs, bytes));
    inboxes.iter().map(Vec::len).sum()
}

/// One deterministic 8-step CPU-executor run, the telemetry-overhead
/// workload. The sim is rebuilt from scratch each call so both sides of the
/// comparison run the identical stationary workload; `tel` is attached when
/// measuring the instrumented side.
fn e2e_cpu_run(p: &SimParams, tel: Option<&Telemetry>) -> u64 {
    let mut sim = CpuSim::new(CpuSimConfig::new(p.clone(), 2)).expect("valid bench config");
    if let Some(t) = tel {
        sim.enable_telemetry(t.clone());
    }
    for _ in 0..8 {
        sim.advance_step().expect("healthy bench run");
    }
    sim.comm_counters().messages
}

fn run_benches(smoke: bool, threads: usize, tel: &Telemetry) -> (Vec<BenchResult>, f64) {
    let mut b = if smoke {
        Bench::new().with_samples(5)
    } else {
        Bench::new()
    };

    // --- Diffusion: naive vs SoA stencil vs wide-lane chunks (identical
    // numerical work; both fast paths asserted bitwise first). ---
    let dims = GridDims::new2d(64, 64);
    let st = StencilDeltas::for_grid(dims);
    let (fa, fb) = diffusion_inputs(dims);
    let mut out_naive = vec![0.0f32; dims.nvoxels()];
    let mut out_stencil = vec![0.0f32; dims.nvoxels()];
    let mut out_wide = vec![0.0f32; dims.nvoxels()];
    diffusion_naive(dims, &fa, &fb, &mut out_naive);
    diffusion_stencil(dims, &st, &fa, &fb, &mut out_stencil);
    diffusion_wide(dims, &st, &fa, &fb, &mut out_wide);
    assert!(
        out_naive
            .iter()
            .zip(&out_stencil)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "stencil fast path must be bitwise identical to the naive sweep"
    );
    assert!(
        out_naive
            .iter()
            .zip(&out_wide)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "wide-lane fast path must be bitwise identical to the naive sweep"
    );
    b.bench("diffusion/naive_64sq", || {
        diffusion_naive(dims, &fa, &fb, &mut out_naive)
    });
    b.bench("diffusion/stencil_64sq", || {
        diffusion_stencil(dims, &st, &fa, &fb, &mut out_stencil)
    });
    b.bench("diffusion/wide_64sq", || {
        diffusion_wide(dims, &st, &fa, &fb, &mut out_wide)
    });

    // --- Halo exchange: per-message delivery vs coalesced mailboxes. ---
    b.bench("halo_exchange/per_message", halo_per_message);
    let pool = WorkPool::new(0);
    let mut mail: Mailboxes<HaloMsg> = Mailboxes::new(HALO_RANKS);
    let mut obs: Vec<Outbox<HaloMsg>> = (0..HALO_RANKS)
        .map(|_| Outbox::for_ranks(HALO_RANKS))
        .collect();
    b.bench("halo_exchange/coalesced", || {
        for ob in &mut obs {
            ob.clear();
        }
        fill_outboxes(&mut obs);
        let vol = mail.exchange(&pool, &mut obs, &[], &[]);
        vol.batch_bytes
    });

    // --- Exact summation (the reproducible-reduction primitive). ---
    let values: Vec<f32> = (0..1024)
        .map(|i| ((i as f32) - 512.0) * 1.7e-3 + if i % 2 == 0 { 1e4 } else { -1e4 })
        .collect();
    b.bench("exact_sum/1k", || {
        let mut s = ExactSum::default();
        for &v in &values {
            s.add_f32(v);
        }
        s.to_f64()
    });

    // --- Small end-to-end run on the serial reference executor. Each
    // iteration runs the same deterministic 8-step simulation from scratch,
    // so the workload is stationary (a warmed sim that keeps advancing
    // during sampling would drift as the infection evolves).
    let p = SimParams::test_config(GridDims::new2d(32, 32), 1000, 4, 7);
    b.bench("e2e/serial_8steps_32", || {
        let mut sim = SerialSim::new(p.clone());
        for _ in 0..8 {
            sim.advance_step();
        }
        sim.step
    });

    // --- Truly concurrent ranks: a 4-rank CPU-executor run with the
    // superstep bodies dispatched across a pinned `WorkPool`. The threaded
    // trajectory is asserted bitwise identical to the inline (serial
    // dispatch) run before it is timed, so the gate exercises the
    // parallel-rank path every run and pins its determinism, not just its
    // speed. No speedup floor is attached: on a single-core CI host the
    // workers only interleave.
    let run_cpu_ranks = |workers: usize| {
        let cfg = CpuSimConfig::new(p.clone(), 4).with_threads(workers);
        let mut sim = CpuSim::new(cfg).expect("valid bench config");
        for _ in 0..8 {
            sim.advance_step().expect("healthy bench run");
        }
        sim
    };
    let inline_history = run_cpu_ranks(0).history().clone();
    assert_eq!(
        run_cpu_ranks(threads).history(),
        &inline_history,
        "threaded rank dispatch must be bitwise identical to inline dispatch"
    );
    b.bench("e2e/cpu_4ranks_threaded", || {
        run_cpu_ranks(threads).comm_counters().messages
    });

    // --- Telemetry overhead: the same deterministic CPU-executor run with
    // instrumentation off vs on, sampled as an interleaved pair so the
    // reported min/min ratio is insensitive to background load landing on
    // one side's window. The pair also gets a wider window than the smoke
    // default — one pair is only ~2 ms, and stretching the window past
    // typical burst durations lets each side's min catch a quiet moment.
    // The shared `tel` handle is attached on the "on" side only; its ring
    // simply wraps across iterations.
    b = b.with_samples(25);
    let overhead = b
        .bench_pair(
            "e2e/telemetry_off",
            || e2e_cpu_run(&p, None),
            "e2e/telemetry_on",
            || e2e_cpu_run(&p, Some(tel)),
        )
        .unwrap_or(0.0);

    let results = b.results().to_vec();
    b.finish();
    (results, overhead)
}

fn results_to_json(results: &[BenchResult], cli: &Cli, speedups: &[(String, f64)]) -> Json {
    let mut doc = Json::obj([("suite", Json::from("perf_gate"))]);
    doc.push("mode", if cli.smoke { "smoke" } else { "full" });
    doc.push("tolerance", cli.tolerance);
    doc.push(
        "kernels",
        Json::Arr(
            results
                .iter()
                .map(|r| {
                    Json::obj([
                        ("name", Json::from(r.name.as_str())),
                        ("min_ns", Json::from(r.min_ns)),
                        ("median_ns", Json::from(r.median_ns)),
                        ("mean_ns", Json::from(r.mean_ns)),
                        ("batch", Json::from(r.batch)),
                    ])
                })
                .collect(),
        ),
    );
    doc.push(
        "speedups",
        Json::Obj(
            speedups
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        ),
    );
    doc
}

fn find_min(results: &[BenchResult], name: &str) -> Option<f64> {
    results.iter().find(|r| r.name == name).map(|r| r.min_ns)
}

/// Baseline min_ns per kernel from a committed perf_gate artifact.
fn baseline_mins(text: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = Json::parse(text)?;
    let kernels = doc
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or("baseline has no 'kernels' array")?;
    let mut out = Vec::new();
    for k in kernels {
        let name = k
            .get("name")
            .and_then(Json::as_str)
            .ok_or("kernel entry without 'name'")?;
        let min = k
            .get("min_ns")
            .and_then(Json::as_f64)
            .ok_or("kernel entry without 'min_ns'")?;
        out.push((name.to_string(), min));
    }
    Ok(out)
}

/// In-run speedup ratios: both sides timed in the same process, so the
/// checks are machine-independent. The telemetry overhead comes from the
/// interleaved pair measurement in `run_benches`, not a min/min ratio.
fn compute_speedups(results: &[BenchResult], tel_overhead: f64) -> Vec<(String, f64)> {
    let speedup = |num: &str, den: &str| -> f64 {
        match (find_min(results, num), find_min(results, den)) {
            (Some(a), Some(b)) if b > 0.0 => a / b,
            _ => 0.0,
        }
    };
    vec![
        (
            "diffusion".to_string(),
            speedup("diffusion/naive_64sq", "diffusion/stencil_64sq"),
        ),
        (
            "diffusion_wide".to_string(),
            speedup("diffusion/naive_64sq", "diffusion/wide_64sq"),
        ),
        (
            "halo_exchange".to_string(),
            speedup("halo_exchange/per_message", "halo_exchange/coalesced"),
        ),
        ("telemetry_overhead".to_string(), tel_overhead),
    ]
}

fn speedup_of(speedups: &[(String, f64)], name: &str) -> f64 {
    speedups
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0.0)
}

/// One full gate evaluation: the in-run speedup floors, the telemetry
/// overhead budget, and the per-kernel regression check against the
/// baseline mins. Returns the failure list; per-kernel `ok` verdict lines
/// are printed only when `verbose` (the final pass).
fn evaluate_gate(
    results: &[BenchResult],
    speedups: &[(String, f64)],
    tel_overhead: f64,
    tolerance: f64,
    base: Option<&[(String, f64)]>,
    verbose: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    let sp_diffusion = speedup_of(speedups, "diffusion");
    let sp_diffusion_wide = speedup_of(speedups, "diffusion_wide");
    let sp_halo = speedup_of(speedups, "halo_exchange");
    if sp_diffusion_wide < MIN_DIFFUSION_SPEEDUP {
        failures.push(format!(
            "wide-lane diffusion speedup {sp_diffusion_wide:.2}x is below the \
             {MIN_DIFFUSION_SPEEDUP}x floor (scalar stencil path: {sp_diffusion:.2}x)"
        ));
    }
    if sp_halo < MIN_HALO_SPEEDUP {
        failures.push(format!(
            "coalesced halo speedup {sp_halo:.2}x is below the {MIN_HALO_SPEEDUP}x floor"
        ));
    }
    if tel_overhead <= 0.0 {
        failures.push("telemetry overhead pair did not run".to_string());
    } else if tel_overhead > MAX_TELEMETRY_OVERHEAD {
        failures.push(format!(
            "telemetry instrumentation overhead {tel_overhead:.3}x exceeds the \
             {MAX_TELEMETRY_OVERHEAD}x budget"
        ));
    }
    if let Some(base) = base {
        for r in results {
            match base.iter().find(|(n, _)| n == &r.name) {
                None => {
                    if verbose {
                        eprintln!("warning: kernel '{}' not in baseline (new?)", r.name);
                    }
                }
                Some(&(_, base_min)) => {
                    let limit = base_min * (1.0 + tolerance);
                    if r.min_ns > limit {
                        failures.push(format!(
                            "{}: {:.1} ns exceeds baseline {:.1} ns by more than {:.0}%",
                            r.name,
                            r.min_ns,
                            base_min,
                            tolerance * 100.0
                        ));
                    } else if verbose {
                        eprintln!(
                            "ok {:<28} {:>10.1} ns (baseline {:>10.1} ns, limit {:>10.1})",
                            r.name, r.min_ns, base_min, limit
                        );
                    }
                }
            }
        }
    }
    failures
}

/// How many times a failing measurement pass is repeated before the gate
/// reports the failure. Min-based timings are one-sided: background noise
/// can only inflate a kernel's best time, never deflate it, so merging the
/// per-kernel min across repeat passes rejects load bursts on shared CI
/// hosts while a genuinely regressed kernel stays over the limit on every
/// pass.
const MAX_NOISE_RETRIES: usize = 2;

fn main() {
    let cli = parse_cli();
    // One shared telemetry instance for the instrumented side of the
    // overhead pair; its registry also backs `--metrics-out`.
    let tel = Telemetry::enabled(3, 1 << 14);
    let (mut results, mut tel_overhead) = run_benches(cli.smoke, cli.threads, &tel);

    // The baseline is read once; a missing file downgrades the regression
    // check to a warning (first run on a fresh machine), while a malformed
    // one is a deterministic config failure no re-measurement can fix.
    let mut config_failure = None;
    let base: Option<Vec<(String, f64)>> = if cli.update_baseline {
        None
    } else {
        match std::fs::read_to_string(&cli.baseline) {
            Err(e) => {
                eprintln!(
                    "warning: no baseline at {} ({e}); regression check skipped",
                    cli.baseline
                );
                None
            }
            Ok(text) => match baseline_mins(&text) {
                Err(e) => {
                    config_failure = Some(format!("baseline {} is malformed: {e}", cli.baseline));
                    None
                }
                Ok(base) => Some(base),
            },
        }
    };

    if !cli.update_baseline && config_failure.is_none() {
        for retry in 1..=MAX_NOISE_RETRIES {
            let speedups = compute_speedups(&results, tel_overhead);
            let failures = evaluate_gate(
                &results,
                &speedups,
                tel_overhead,
                cli.tolerance,
                base.as_deref(),
                false,
            );
            if failures.is_empty() {
                break;
            }
            eprintln!(
                "perf gate: {} check(s) over limit; re-measuring to reject noise \
                 (retry {retry}/{MAX_NOISE_RETRIES})",
                failures.len()
            );
            let (fresh, fresh_overhead) = run_benches(cli.smoke, cli.threads, &tel);
            for f in fresh {
                match results.iter_mut().find(|r| r.name == f.name) {
                    Some(r) if f.min_ns < r.min_ns => *r = f,
                    Some(_) => {}
                    None => results.push(f),
                }
            }
            if fresh_overhead > 0.0 && (tel_overhead <= 0.0 || fresh_overhead < tel_overhead) {
                tel_overhead = fresh_overhead;
            }
        }
    }

    let speedups = compute_speedups(&results, tel_overhead);
    eprintln!(
        "speedup diffusion stencil/naive:    {:.2}x",
        speedup_of(&speedups, "diffusion")
    );
    eprintln!(
        "speedup diffusion wide/naive:       {:.2}x",
        speedup_of(&speedups, "diffusion_wide")
    );
    eprintln!(
        "speedup halo coalesced/per-message: {:.2}x",
        speedup_of(&speedups, "halo_exchange")
    );
    eprintln!("telemetry on/off overhead:          {tel_overhead:.3}x");

    let doc = results_to_json(&results, &cli, &speedups);
    write_json(&cli.json, &doc);

    if let Some(path) = &cli.metrics_out {
        let reg = tel.registry().expect("tel is enabled");
        for r in &results {
            reg.gauge_with(
                "perf_gate_min_ns",
                "best per-iteration wall time of a perf_gate kernel",
                &[("kernel", r.name.as_str())],
            )
            .set(r.min_ns);
        }
        for (name, v) in &speedups {
            reg.gauge_with(
                "perf_gate_speedup",
                "in-run speedup ratios measured by perf_gate",
                &[("pair", name.as_str())],
            )
            .set(*v);
        }
        std::fs::write(path, prometheus::render(reg)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("prometheus metrics -> {path}");
    }

    if cli.update_baseline {
        write_json(&cli.baseline, &doc);
        eprintln!("baseline updated; no comparison performed");
        return;
    }

    let mut failures = evaluate_gate(
        &results,
        &speedups,
        tel_overhead,
        cli.tolerance,
        base.as_deref(),
        true,
    );
    if let Some(e) = config_failure {
        failures.push(e);
    }

    if failures.is_empty() {
        eprintln!("perf gate: PASS");
    } else {
        eprintln!("perf gate: FAIL");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
