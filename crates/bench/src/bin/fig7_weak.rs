//! Fig. 7 — weak scaling: problem size (voxels) and FOI double together
//! with compute resources; grid side 10,000 → 40,000, FOI 16 → 256.

use simcov_bench::configs::{paper, scale_from_env, Experiment, ScaledExperiment};
use simcov_bench::report::{banner, fmt_secs, shape_verdict, Table};
use simcov_bench::runner::{run_cpu, run_gpu};
use simcov_gpu::GpuVariant;

fn main() {
    let scale = scale_from_env();
    println!("{}", banner("Fig 7: Weak scaling (voxels, FOI and resources double)", scale));
    let mut table = Table::new(&[
        "{GPUs,CPUs}",
        "grid",
        "FOI",
        "CPU runtime (s)",
        "GPU runtime (s)",
        "speedup",
        "paper speedup",
        "shape",
    ]);
    for i in 0..paper::WEAK_MACHINES.len() {
        let m = paper::WEAK_MACHINES[i];
        let e = Experiment {
            name: "weak",
            grid_side: paper::WEAK_GRIDS[i],
            num_foi: paper::WEAK_FOIS[i],
            steps: paper::STEPS,
            machine: m,
        };
        let se = ScaledExperiment::new(e, scale, 1);
        let cpu = run_cpu(se.params.clone(), m.cpus, scale);
        let gpu = run_gpu(se.params, m.gpus, GpuVariant::Combined, scale);
        let speedup = cpu.seconds / gpu.seconds;
        let paper_speedup = paper::WEAK_SPEEDUPS[i];
        table.row(vec![
            format!("{{{},{}}}", m.gpus, m.cpus),
            format!("{0}x{0}", paper::WEAK_GRIDS[i]),
            paper::WEAK_FOIS[i].to_string(),
            fmt_secs(cpu.seconds),
            fmt_secs(gpu.seconds),
            format!("{speedup:.2}x"),
            format!("{paper_speedup:.2}x"),
            shape_verdict(paper_speedup, speedup).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: a sustained ~4x GPU advantage across the sweep, with an initial\n\
         cost of parallelism between 4 and 16 GPUs before GPU runtime flattens\n\
         (paper: 4.91, 4.38, 3.53, 3.48, 3.82)."
    );
}
