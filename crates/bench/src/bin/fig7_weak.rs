//! Fig. 7 — weak scaling: problem size (voxels) and FOI double together
//! with compute resources; grid side 10,000 → 40,000, FOI 16 → 256.
//!
//! `--json <path>` additionally writes the sweep points as JSON.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::scale_from_env;
use simcov_bench::experiments::fig7;
use simcov_bench::json::write_json;

fn main() {
    let flags = CommonFlags::parse("usage: fig7_weak [--json PATH]");
    let scale = scale_from_env();
    let result = fig7(scale);
    println!("{}", result.render_weak());
    if let Some(path) = flags.json {
        write_json(&path, &result.to_json());
    }
}
