//! Fig. 7 — weak scaling: problem size (voxels) and FOI double together
//! with compute resources; grid side 10,000 → 40,000, FOI 16 → 256.
//!
//! `--json <path>` additionally writes the sweep points as JSON.

use simcov_bench::configs::scale_from_env;
use simcov_bench::experiments::fig7;
use simcov_bench::json::{json_path_from_args, write_json};

fn main() {
    let scale = scale_from_env();
    let result = fig7(scale);
    println!("{}", result.render_weak());
    if let Some(path) = json_path_from_args() {
        write_json(&path, &result.to_json());
    }
}
