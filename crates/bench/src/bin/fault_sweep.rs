//! Fault sweep: failure rate × checkpoint period on the recovering BSP
//! runtime.
//!
//! For every (death rate, checkpoint period) cell the sweep runs the CPU
//! executor under a seeded fault plan, verifies the recovered trajectory is
//! bitwise identical to the failure-free baseline, and meters what fault
//! tolerance costs: checkpoint overhead (incremental vs dense bytes) and
//! recovery cost (replayed steps + simulated backoff — the offline MTTR
//! proxy). A GPU row checks the same machinery on the second executor.
//!
//! `--json <path>` writes the curves (`BENCH_fault_sweep.json` by
//! convention).

use pgas::{FaultPlan, FaultRates};
use simcov_bench::json::{json_path_from_args, write_json, Json};
use simcov_bench::report::Table;
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_core::stats::TimeSeries;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::{Executor, RecoveryPolicy, Simulation};
use simcov_gpu::{GpuSim, GpuSimConfig};

const RANKS: usize = 4;
const SEED: u64 = 0xFA17;

fn params() -> SimParams {
    SimParams::test_config(GridDims::new2d(48, 48), 120, 8, 7)
}

/// What one sweep cell measured.
struct Cell {
    executor: &'static str,
    death_rate: f64,
    checkpoint_period: u64,
    recoveries: usize,
    replayed_steps: u64,
    backoff_ns: u64,
    survivors: usize,
    checkpoint_saves: u64,
    checkpoint_full_bytes: u64,
    checkpoint_delta_bytes: u64,
    identical: bool,
}

impl Cell {
    /// Mean simulated time-to-repair per failure: replay + backoff, using
    /// the superstep wall-clock as the replay unit is overkill here — the
    /// curves report steps and nanoseconds separately and this scalar just
    /// orders the cells.
    fn mean_replayed(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.replayed_steps as f64 / self.recoveries as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("executor", Json::from(self.executor)),
            ("death_rate", Json::from(self.death_rate)),
            ("checkpoint_period", Json::from(self.checkpoint_period)),
            ("recoveries", Json::from(self.recoveries)),
            ("replayed_steps", Json::from(self.replayed_steps)),
            ("mean_replayed_steps", Json::from(self.mean_replayed())),
            ("backoff_ns", Json::from(self.backoff_ns)),
            ("survivors", Json::from(self.survivors)),
            ("checkpoint_saves", Json::from(self.checkpoint_saves)),
            (
                "checkpoint_full_bytes",
                Json::from(self.checkpoint_full_bytes),
            ),
            (
                "checkpoint_delta_bytes",
                Json::from(self.checkpoint_delta_bytes),
            ),
            ("identical_to_failure_free", Json::from(self.identical)),
        ])
    }
}

fn sweep_cpu(death_rate: f64, period: u64, baseline: &TimeSeries) -> Cell {
    let p = params();
    // 3 supersteps per CPU step.
    let horizon = p.steps * 3;
    let rates = FaultRates {
        death: death_rate,
        ..FaultRates::default()
    };
    let plan = FaultPlan::seeded(SEED, &rates, RANKS, horizon);
    let policy = RecoveryPolicy {
        checkpoint_period: period,
        ..RecoveryPolicy::default()
    };
    let mut sim = CpuSim::new(
        CpuSimConfig::new(p, RANKS)
            .with_fault_plan(plan)
            .with_recovery(policy),
    )
    .expect("valid sweep config");
    sim.run().expect("recovery must absorb the seeded faults");
    collect("cpu", death_rate, period, &sim, baseline)
}

fn sweep_gpu(death_rate: f64, period: u64, baseline: &TimeSeries) -> Cell {
    let p = params();
    // 2 supersteps per GPU step.
    let horizon = p.steps * 2;
    let rates = FaultRates {
        death: death_rate,
        ..FaultRates::default()
    };
    let plan = FaultPlan::seeded(SEED, &rates, RANKS, horizon);
    let policy = RecoveryPolicy {
        checkpoint_period: period,
        ..RecoveryPolicy::default()
    };
    let mut sim = GpuSim::new(
        GpuSimConfig::new(p, RANKS)
            .with_fault_plan(plan)
            .with_recovery(policy),
    )
    .expect("valid sweep config");
    sim.run().expect("recovery must absorb the seeded faults");
    collect("gpu", death_rate, period, &sim, baseline)
}

fn collect<E: Executor>(
    executor: &'static str,
    death_rate: f64,
    period: u64,
    sim: &E,
    baseline: &TimeSeries,
) -> Cell {
    let log = sim.recovery_log();
    let store = sim
        .core()
        .recovery
        .as_ref()
        .map(|rm| (rm.store.saves, rm.store.full_bytes, rm.store.delta_bytes))
        .unwrap_or_default();
    let identical = baseline == sim.history();
    assert!(
        identical,
        "{executor} rate {death_rate} period {period}: recovered run diverged"
    );
    Cell {
        executor,
        death_rate,
        checkpoint_period: period,
        recoveries: log.len(),
        replayed_steps: log.iter().map(|r| r.replayed_steps).sum(),
        backoff_ns: log.iter().map(|r| r.backoff_ns).sum(),
        survivors: sim.unit_count(),
        checkpoint_saves: store.0,
        checkpoint_full_bytes: store.1,
        checkpoint_delta_bytes: store.2,
        identical,
    }
}

fn main() {
    let p = params();
    println!(
        "Fault sweep: {}x{} voxels, {} steps, {RANKS} ranks, seed {SEED:#x}",
        p.dims.x, p.dims.y, p.steps
    );

    let mut baseline = CpuSim::new(CpuSimConfig::new(p.clone(), RANKS)).expect("valid config");
    baseline.run().expect("failure-free baseline");
    let cpu_baseline = baseline.history().clone();

    let mut gpu_baseline_sim = GpuSim::new(GpuSimConfig::new(p, RANKS)).expect("valid config");
    gpu_baseline_sim.run().expect("failure-free baseline");
    let gpu_baseline = gpu_baseline_sim.history().clone();
    assert_eq!(
        cpu_baseline, gpu_baseline,
        "executors must agree before the sweep means anything"
    );

    let mut table = Table::new(&[
        "executor",
        "death rate",
        "ckpt period",
        "recoveries",
        "replayed",
        "backoff (ms)",
        "survivors",
        "ckpt bytes (delta/full)",
        "identical",
    ]);
    let mut cells = Vec::new();
    for &rate in &[0.0, 0.0005, 0.002] {
        for &period in &[4u64, 16, 64] {
            cells.push(sweep_cpu(rate, period, &cpu_baseline));
        }
    }
    cells.push(sweep_gpu(0.002, 8, &gpu_baseline));

    for c in &cells {
        table.row(vec![
            c.executor.to_string(),
            format!("{:.4}", c.death_rate),
            c.checkpoint_period.to_string(),
            c.recoveries.to_string(),
            c.replayed_steps.to_string(),
            format!("{:.3}", c.backoff_ns as f64 / 1e6),
            c.survivors.to_string(),
            format!("{}/{}", c.checkpoint_delta_bytes, c.checkpoint_full_bytes),
            c.identical.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Every recovered run is bitwise identical to its failure-free baseline;\n\
         shorter checkpoint periods trade snapshot bytes for shorter replays."
    );

    if let Some(path) = json_path_from_args() {
        write_json(
            &path,
            &Json::obj([
                ("suite", Json::from("fault_sweep")),
                ("ranks", Json::from(RANKS)),
                ("seed", Json::from(SEED)),
                ("rows", Json::Arr(cells.iter().map(Cell::to_json).collect())),
            ]),
        );
    }
}
