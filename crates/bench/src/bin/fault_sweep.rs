//! Fault sweep: failure rate × checkpoint period on the recovering BSP
//! runtime.
//!
//! For every (death rate, checkpoint period) cell the sweep runs the CPU
//! executor under a seeded fault plan, verifies the recovered trajectory is
//! bitwise identical to the failure-free baseline, and meters what fault
//! tolerance costs: checkpoint overhead (incremental vs dense bytes) and
//! recovery cost (replayed steps + simulated backoff — the offline MTTR
//! proxy). A GPU row checks the same machinery on the second executor.
//!
//! The cells run as [`JobSpec`]s on the sweep job server — the baselines
//! and every cell are scheduled across its work-stealing worker pool and
//! read back as [`JobReport`]s; per-job streamed records land under
//! `target/sweep/fault_sweep/`.
//!
//! `--json <path>` writes the curves (`BENCH_fault_sweep.json` by
//! convention); `--seed N` overrides the fault-plan seed.

use simcov_bench::cli::CommonFlags;
use simcov_bench::json::{write_json, Json};
use simcov_bench::report::Table;
use simcov_core::grid::GridDims;
use simcov_sweep::{
    ExecutorKind, FaultSpec, JobReport, JobSpec, RecoverySpec, RunSpec, SweepConfig, SweepServer,
};
use std::collections::HashMap;

const RANKS: usize = 4;
const DEFAULT_SEED: u64 = 0xFA17;

fn run_spec(executor: ExecutorKind) -> RunSpec {
    RunSpec::test(executor, GridDims::new2d(48, 48), 120, 8, 7).with_units(RANKS)
}

/// The sweep cell for `executor` at one (death rate, checkpoint period)
/// point, as a job submission.
fn cell_job(executor: ExecutorKind, seed: u64, rate: f64, period: u64) -> JobSpec {
    let run = run_spec(executor)
        .with_fault(FaultSpec {
            seed,
            rates: pgas::FaultRates {
                death: rate,
                ..pgas::FaultRates::default()
            },
        })
        .with_recovery(RecoverySpec {
            checkpoint_period: period,
            ..RecoverySpec::default()
        });
    JobSpec::new(cell_name(executor, rate, period), run)
}

fn cell_name(executor: ExecutorKind, rate: f64, period: u64) -> String {
    format!("{}_d{rate}_p{period}", executor.name())
}

/// What one sweep cell measured.
struct Cell {
    executor: &'static str,
    death_rate: f64,
    checkpoint_period: u64,
    recoveries: usize,
    replayed_steps: u64,
    backoff_ns: u64,
    survivors: usize,
    checkpoint_saves: u64,
    checkpoint_full_bytes: u64,
    checkpoint_delta_bytes: u64,
    identical: bool,
}

impl Cell {
    /// Mean simulated time-to-repair per failure: replay + backoff, using
    /// the superstep wall-clock as the replay unit is overkill here — the
    /// curves report steps and nanoseconds separately and this scalar just
    /// orders the cells.
    fn mean_replayed(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.replayed_steps as f64 / self.recoveries as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("executor", Json::from(self.executor)),
            ("death_rate", Json::from(self.death_rate)),
            ("checkpoint_period", Json::from(self.checkpoint_period)),
            ("recoveries", Json::from(self.recoveries)),
            ("replayed_steps", Json::from(self.replayed_steps)),
            ("mean_replayed_steps", Json::from(self.mean_replayed())),
            ("backoff_ns", Json::from(self.backoff_ns)),
            ("survivors", Json::from(self.survivors)),
            ("checkpoint_saves", Json::from(self.checkpoint_saves)),
            (
                "checkpoint_full_bytes",
                Json::from(self.checkpoint_full_bytes),
            ),
            (
                "checkpoint_delta_bytes",
                Json::from(self.checkpoint_delta_bytes),
            ),
            ("identical_to_failure_free", Json::from(self.identical)),
        ])
    }
}

fn collect(
    executor: ExecutorKind,
    death_rate: f64,
    period: u64,
    report: &JobReport,
    baseline: &JobReport,
) -> Cell {
    let identical = baseline.history == report.history;
    assert!(
        identical,
        "{} rate {death_rate} period {period}: recovered run diverged",
        executor.name()
    );
    Cell {
        executor: executor.name(),
        death_rate,
        checkpoint_period: period,
        recoveries: report.recoveries.len(),
        replayed_steps: report.recoveries.iter().map(|r| r.replayed_steps).sum(),
        backoff_ns: report.recoveries.iter().map(|r| r.backoff_ns).sum(),
        survivors: report.survivors,
        checkpoint_saves: report.checkpoints.saves,
        checkpoint_full_bytes: report.checkpoints.full_bytes,
        checkpoint_delta_bytes: report.checkpoints.delta_bytes,
        identical,
    }
}

fn main() {
    let flags = CommonFlags::parse("usage: fault_sweep [--json PATH] [--seed N]");
    let seed = flags.seed.unwrap_or(DEFAULT_SEED);
    let p = run_spec(ExecutorKind::Cpu).params();
    println!(
        "Fault sweep: {}x{} voxels, {} steps, {RANKS} ranks, seed {seed:#x}",
        p.dims.x, p.dims.y, p.steps
    );

    let out_dir = std::path::Path::new("target/sweep/fault_sweep");
    let _ = std::fs::remove_dir_all(out_dir); // one-shot: never resume old cells
    let server =
        SweepServer::start(SweepConfig::new(out_dir).with_workers(2)).expect("start sweep server");

    const CPU_RATES: [f64; 3] = [0.0, 0.0005, 0.002];
    const PERIODS: [u64; 3] = [4, 16, 64];

    server.submit(JobSpec::new("baseline_cpu", run_spec(ExecutorKind::Cpu)));
    server.submit(JobSpec::new("baseline_gpu", run_spec(ExecutorKind::Gpu)));
    for rate in CPU_RATES {
        for period in PERIODS {
            server.submit(cell_job(ExecutorKind::Cpu, seed, rate, period));
        }
    }
    server.submit(cell_job(ExecutorKind::Gpu, seed, 0.002, 8));

    let reports: HashMap<String, JobReport> = server
        .join()
        .into_iter()
        .map(|(name, status)| {
            let report = status
                .report()
                .unwrap_or_else(|| panic!("job {name:?} must complete, got {status:?}"))
                .clone();
            (name, report)
        })
        .collect();
    let cpu_baseline = &reports["baseline_cpu"];
    let gpu_baseline = &reports["baseline_gpu"];
    assert_eq!(
        cpu_baseline.history, gpu_baseline.history,
        "executors must agree before the sweep means anything"
    );

    let mut table = Table::new(&[
        "executor",
        "death rate",
        "ckpt period",
        "recoveries",
        "replayed",
        "backoff (ms)",
        "survivors",
        "ckpt bytes (delta/full)",
        "identical",
    ]);
    let mut cells = Vec::new();
    for rate in CPU_RATES {
        for period in PERIODS {
            let name = cell_name(ExecutorKind::Cpu, rate, period);
            cells.push(collect(
                ExecutorKind::Cpu,
                rate,
                period,
                &reports[&name],
                cpu_baseline,
            ));
        }
    }
    let gpu_name = cell_name(ExecutorKind::Gpu, 0.002, 8);
    cells.push(collect(
        ExecutorKind::Gpu,
        0.002,
        8,
        &reports[&gpu_name],
        gpu_baseline,
    ));

    for c in &cells {
        table.row(vec![
            c.executor.to_string(),
            format!("{:.4}", c.death_rate),
            c.checkpoint_period.to_string(),
            c.recoveries.to_string(),
            c.replayed_steps.to_string(),
            format!("{:.3}", c.backoff_ns as f64 / 1e6),
            c.survivors.to_string(),
            format!("{}/{}", c.checkpoint_delta_bytes, c.checkpoint_full_bytes),
            c.identical.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Every recovered run is bitwise identical to its failure-free baseline;\n\
         shorter checkpoint periods trade snapshot bytes for shorter replays."
    );

    if let Some(path) = flags.json {
        write_json(
            &path,
            &Json::obj([
                ("suite", Json::from("fault_sweep")),
                ("ranks", Json::from(RANKS)),
                ("seed", Json::from(seed)),
                ("rows", Json::Arr(cells.iter().map(Cell::to_json).collect())),
            ]),
        );
    }
}
