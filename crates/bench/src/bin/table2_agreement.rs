//! Table 2 — correctness: percent agreement of peak statistics between
//! SIMCoV-CPU and SIMCoV-GPU, and their standard deviations across trials.
//!
//! `--json <path>` additionally writes the agreement rows as JSON.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::{scale_from_env, trials_from_env};
use simcov_bench::experiments::{correctness_trials, render_table2, table2_rows, table2_to_json};
use simcov_bench::json::{write_json, Json};

fn main() {
    let flags = CommonFlags::parse("usage: table2_agreement [--json PATH]");
    let scale = scale_from_env();
    let trials = trials_from_env();
    let t = correctness_trials(scale, trials, 2000);
    let rows = table2_rows(&t);
    println!("{}", render_table2(scale, &rows));
    if let Some(path) = flags.json {
        let doc = Json::obj([
            ("trials", Json::from(trials)),
            ("rows", table2_to_json(&rows)),
        ]);
        write_json(&path, &doc);
    }
}
