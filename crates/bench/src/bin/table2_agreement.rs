//! Table 2 — correctness: percent agreement of peak statistics between
//! SIMCoV-CPU and SIMCoV-GPU, and their standard deviations across trials.

use simcov_bench::configs::{paper, scale_from_env, trials_from_env, ScaledExperiment};
use simcov_bench::report::{banner, Table};
use simcov_bench::runner::{run_cpu, run_gpu};
use simcov_core::stats::{mean_std, percent_agreement, Metric, TimeSeries};
use simcov_gpu::GpuVariant;

fn main() {
    let scale = scale_from_env();
    let trials = trials_from_env();
    println!("{}", banner("Table 2: peak-statistic agreement (CPU vs GPU)", scale));
    let m = paper::CORRECTNESS.machine;
    let mut cpu_runs: Vec<TimeSeries> = Vec::new();
    let mut gpu_runs: Vec<TimeSeries> = Vec::new();
    for trial in 0..trials {
        let se = ScaledExperiment::new(paper::CORRECTNESS, scale, 2000 + trial as u64);
        eprintln!("trial {trial} ...");
        cpu_runs.push(run_cpu(se.params.clone(), m.cpus, scale).history);
        gpu_runs.push(run_gpu(se.params, m.gpus, GpuVariant::Combined, scale).history);
    }

    let mut table = Table::new(&[
        "Stat (Peak)",
        "Pct. Agree.",
        "CPU STD",
        "GPU STD",
        "paper Pct.",
    ]);
    for (label, metric, paper_pct) in [
        ("Virus", Metric::Virions, 99.68),
        ("T cells", Metric::TCellsTissue, 99.01),
        ("Apop. Epi. Cells", Metric::EpiApoptotic, 99.42),
    ] {
        let cpu_peaks: Vec<f64> = cpu_runs.iter().map(|r| r.peak(metric)).collect();
        let gpu_peaks: Vec<f64> = gpu_runs.iter().map(|r| r.peak(metric)).collect();
        let (cpu_mean, cpu_std) = mean_std(&cpu_peaks);
        let (gpu_mean, gpu_std) = mean_std(&gpu_peaks);
        let agree = percent_agreement(cpu_mean, gpu_mean);
        table.row(vec![
            label.to_string(),
            format!("{agree:.2}"),
            format!("{cpu_std:.2}"),
            format!("{gpu_std:.2}"),
            format!("{paper_pct:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Note: in this reproduction CPU and GPU are bitwise identical per seed (the\n\
         counter-based-RNG strengthening of the paper's §4.1 staging fix), so agreement\n\
         is 100% by construction — tighter than the paper's ≥99%. Standard deviations\n\
         reflect genuine across-seed variability, as in the paper."
    );
}
