//! The `simcov` command-line tool: run a simulation from a SIMCoV-style
//! config file on the executor of your choice, writing a CSV time series
//! and optional PPM visualization frames — the workflow of the original
//! open-source SIMCoV.
//!
//! ```text
//! simcov <config-file> [--executor serial|cpu|gpu] [--units N]
//!        [--out-csv FILE] [--frames DIR --n-frames K] [--variant NAME]
//!        [--json FILE] [--persist FILE] [--persist-every K]
//!        [--resume FILE] [--halt-after N]
//!        [--trace-out FILE] [--metrics-out FILE]
//!        [--transport inproc|process] [--wire-kill SUPERSTEP:RANK]
//! ```
//!
//! `--transport process` runs the exchange over the socket transport: one
//! worker process per rank (this same binary re-exec'd with
//! `--rank-worker`), CRC64-sealed frames, read/write deadlines with
//! bounded retry. Results are bitwise identical to `inproc`. `--wire-kill
//! SUPERSTEP:RANK` SIGKILLs one worker at that BSP barrier; the run
//! engages the default recovery ladder and rides the real crash out.
//!
//! `--json` writes a structured run summary; on the cpu/gpu executors it
//! includes the per-step [`StepRecord`]s of the metrics layer (agents,
//! active work units, communication volume, simulated and real seconds).
//!
//! `--trace-out` records the unified telemetry span stream (driver steps →
//! BSP supersteps → per-rank compute/exchange → GPU kernel phases) and
//! writes it as Chrome trace-event JSON (open in `chrome://tracing` or
//! Perfetto). `--metrics-out` writes the run's metric registry in
//! Prometheus text exposition. Either flag engages telemetry and the online
//! health monitor; both are pure observation — results are bitwise
//! identical with and without them.
//!
//! `--persist` writes a durable CRC-guarded checkpoint file every
//! `--persist-every` steps (atomic staged rename), `--resume` restarts a
//! run from such a file, and `--halt-after N` aborts the process right
//! after step `N` without any final persist — a SIGKILL stand-in for
//! crash-restart testing (exit code 3).

use gpusim::{KernelCategory, SharedSink, StepRecord};
use pgas::{ProcessTransportConfig, TransportMode, WireFaultPlan};
use simcov_bench::cli::CommonFlags;
use simcov_bench::json::Json;
use simcov_core::config::parse_config;
use simcov_core::render::render_slice;
use simcov_core::stats::TimeSeries;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::{RecoveryPolicy, SerialDriver, Simulation};
use simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};
use simcov_telemetry::{chrome, prometheus, HealthConfig, Telemetry};
use std::fs;

struct Args {
    config: String,
    executor: String,
    units: usize,
    out_csv: Option<String>,
    frames: Option<String>,
    n_frames: u64,
    variant: GpuVariant,
    json: Option<String>,
    persist: Option<String>,
    persist_every: u64,
    resume: Option<String>,
    halt_after: Option<u64>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    transport: String,
    wire_kill: Option<(u64, usize)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: simcov <config-file> [--executor serial|cpu|gpu] [--units N]\n\
         \t[--out-csv FILE] [--frames DIR] [--n-frames K]\n\
         \t[--variant unoptimized|fast-reduction|memory-tiling|combined]\n\
         \t[--json FILE] [--persist FILE] [--persist-every K]\n\
         \t[--resume FILE] [--halt-after N]\n\
         \t[--trace-out FILE] [--metrics-out FILE]\n\
         \t[--transport inproc|process] [--wire-kill SUPERSTEP:RANK]"
    );
    std::process::exit(2);
}

/// `simcov --rank-worker --connect ADDR --rank N --token T`: the per-rank
/// frame-holder process of the socket transport re-enters this same binary.
/// Never invoked by hand; the argument surface is frozen by the transport.
fn run_worker(args: &[String]) -> ! {
    let (mut connect, mut rank, mut token) = (None, None, None);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = it.next().cloned(),
            "--rank" => rank = it.next().and_then(|v| v.parse::<usize>().ok()),
            "--token" => token = it.next().and_then(|v| v.parse::<u64>().ok()),
            _ => {}
        }
    }
    let (Some(connect), Some(rank), Some(token)) = (connect, rank, token) else {
        eprintln!("--rank-worker requires --connect ADDR --rank N --token T");
        std::process::exit(2);
    };
    match pgas::run_rank_worker(&connect, rank, token) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("rank worker {rank}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        config: String::new(),
        executor: "gpu".into(),
        units: 4,
        out_csv: None,
        frames: None,
        n_frames: 8,
        variant: GpuVariant::Combined,
        json: None,
        persist: None,
        persist_every: 10,
        resume: None,
        halt_after: None,
        trace_out: None,
        metrics_out: None,
        transport: "inproc".into(),
        wire_kill: None,
    };
    let (common, rest) = CommonFlags::parse_with_rest();
    args.json = common.json;
    args.trace_out = common.trace_out;
    args.metrics_out = common.metrics_out;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--executor" => args.executor = it.next().unwrap_or_else(|| usage()),
            "--units" => {
                args.units = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out-csv" => args.out_csv = Some(it.next().unwrap_or_else(|| usage())),
            "--frames" => args.frames = Some(it.next().unwrap_or_else(|| usage())),
            "--n-frames" => {
                args.n_frames = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--variant" => {
                args.variant = match it.next().as_deref() {
                    Some("unoptimized") => GpuVariant::Unoptimized,
                    Some("fast-reduction") => GpuVariant::FastReduction,
                    Some("memory-tiling") => GpuVariant::MemoryTiling,
                    Some("combined") => GpuVariant::Combined,
                    _ => usage(),
                }
            }
            "--persist" => args.persist = Some(it.next().unwrap_or_else(|| usage())),
            "--persist-every" => {
                args.persist_every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k| k > 0)
                    .unwrap_or_else(|| usage())
            }
            "--resume" => args.resume = Some(it.next().unwrap_or_else(|| usage())),
            "--transport" => args.transport = it.next().unwrap_or_else(|| usage()),
            "--wire-kill" => {
                // SUPERSTEP:RANK — SIGKILL that worker at that BSP barrier.
                args.wire_kill = it
                    .next()
                    .and_then(|v| {
                        let (s, r) = v.split_once(':')?;
                        Some((s.parse().ok()?, r.parse().ok()?))
                    })
                    .or_else(|| usage())
            }
            "--halt-after" => {
                args.halt_after = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other if args.config.is_empty() && !other.starts_with('-') => {
                args.config = other.to_string()
            }
            _ => usage(),
        }
    }
    if args.config.is_empty() {
        usage();
    }
    args
}

fn write_csv(path: &str, h: &TimeSeries) {
    let mut out = String::from(
        "step,virions,chemokine,tcells_vasculature,tcells_tissue,\
         epi_healthy,epi_incubating,epi_expressing,epi_apoptotic,epi_dead,extravasated\n",
    );
    for s in &h.steps {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            s.step,
            s.virions,
            s.chemokine,
            s.tcells_vasculature,
            s.tcells_tissue,
            s.epi_healthy,
            s.epi_incubating,
            s.epi_expressing,
            s.epi_apoptotic,
            s.epi_dead,
            s.extravasated
        ));
    }
    fs::write(path, out).expect("write csv");
}

fn main() {
    // Transport workers re-enter this binary; divert before normal parsing.
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("--rank-worker") {
        run_worker(&argv[2..]);
    }
    let args = parse_args();
    let text = fs::read_to_string(&args.config)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", args.config));
    let params = parse_config(&text).unwrap_or_else(|e| panic!("bad config: {e}"));
    eprintln!(
        "simcov: {}x{}x{} voxels, {} steps, {} FOI, executor {} (x{})",
        params.dims.x,
        params.dims.y,
        params.dims.z,
        params.steps,
        params.num_foi,
        args.executor,
        args.units
    );

    let steps = params.steps;
    let frame_every = (steps / args.n_frames.max(1)).max(1);
    if let Some(dir) = &args.frames {
        fs::create_dir_all(dir).expect("create frames dir");
    }

    let dims = params.dims;
    let num_foi = params.num_foi;
    let ck_params = params.clone();
    // The per-step metrics sink backing --json.
    let sink = SharedSink::new();
    // `--transport process` re-execs this binary as one worker per rank;
    // `--wire-kill` additionally schedules a real SIGKILL at a barrier, so
    // the default recovery ladder is engaged to ride it out.
    let transport = match args.transport.as_str() {
        "inproc" => TransportMode::InProcess,
        "process" => {
            let exe = std::env::current_exe().expect("current_exe");
            let mut tcfg = ProcessTransportConfig::exec(exe);
            if let Some((superstep, rank)) = args.wire_kill {
                tcfg = tcfg.with_wire_faults(WireFaultPlan::none().kill_worker(superstep, rank));
            }
            TransportMode::Process(tcfg)
        }
        _ => usage(),
    };
    if matches!(transport, TransportMode::Process(_)) && args.executor == "serial" {
        eprintln!("--transport process requires --executor cpu or gpu");
        std::process::exit(2);
    }
    // One object-safe driver API over all three executors.
    let mut driver: Box<dyn Simulation> = match args.executor.as_str() {
        "serial" => Box::new(SerialDriver::new(params).unwrap_or_else(|e| panic!("{e}"))),
        "cpu" => {
            let mut cfg = CpuSimConfig::new(params, args.units).with_transport(transport);
            if args.wire_kill.is_some() {
                cfg = cfg.with_recovery(RecoveryPolicy::default());
            }
            Box::new(CpuSim::new(cfg).unwrap_or_else(|e| panic!("{e}")))
        }
        "gpu" => {
            let mut cfg = GpuSimConfig::new(params, args.units)
                .with_variant(args.variant)
                .with_transport(transport);
            if args.wire_kill.is_some() {
                cfg = cfg.with_recovery(RecoveryPolicy::default());
            }
            Box::new(GpuSim::new(cfg).unwrap_or_else(|e| panic!("{e}")))
        }
        _ => usage(),
    };
    if args.json.is_some() {
        driver.set_metrics_sink(Box::new(sink.clone()));
    }
    // Either exporter flag engages telemetry (track 0 for the driver and
    // runtime, one per unit) and the online health monitor.
    let telemetry = if args.trace_out.is_some() || args.metrics_out.is_some() {
        let tel = Telemetry::enabled(args.units + 1, 1 << 16);
        driver.enable_telemetry(tel.clone());
        driver.enable_health(HealthConfig::default());
        Some(tel)
    } else {
        None
    };
    if let Some(path) = &args.resume {
        // A crash mid-persist can leave a `.tmp` stage orphaned next to the
        // sealed checkpoint. Stages are never sealed generations, so sweep
        // them before restoring — otherwise they accumulate forever.
        let swept = simcov_driver::sweep_stale_stages(std::path::Path::new(path));
        if swept > 0 {
            eprintln!("swept {swept} orphaned checkpoint stage file(s)");
        }
        let cp = simcov_driver::load_checkpoint(std::path::Path::new(path), &ck_params)
            .unwrap_or_else(|e| panic!("cannot resume from {path}: {e}"));
        let at = cp.step;
        driver
            .restore(&cp)
            .unwrap_or_else(|e| panic!("cannot restore {path}: {e}"));
        eprintln!("resumed from {path} at step {at}");
    }

    while driver.step() < steps {
        let step = driver.step() + 1;
        driver
            .advance_step()
            .unwrap_or_else(|e| panic!("step {step} failed: {e}"));
        if let Some(dir) = &args.frames {
            if step.is_multiple_of(frame_every) || step == steps {
                let img = render_slice(&driver.gather_world(), 0, 512);
                let path = format!("{dir}/step_{step:06}.ppm");
                fs::write(&path, img.to_ppm()).expect("write frame");
                eprintln!("frame {path}");
            }
        }
        if let Some(path) = &args.persist {
            if step.is_multiple_of(args.persist_every) || step == steps {
                let cp = driver.checkpoint();
                simcov_driver::persist_checkpoint(std::path::Path::new(path), &ck_params, &cp)
                    .unwrap_or_else(|e| panic!("cannot persist {path}: {e}"));
            }
        }
        if args.halt_after == Some(step) {
            // Simulated SIGKILL: stop dead with no final persist, CSV or
            // JSON. Only checkpoints already persisted survive.
            eprintln!("halting after step {step} (simulated crash)");
            std::process::exit(3);
        }
    }

    if let Some(tel) = &telemetry {
        publish_final_metrics(tel, driver.as_ref());
        if let Some(path) = &args.trace_out {
            fs::write(path, chrome::render(tel, driver.health_records()))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!(
                "chrome trace -> {path} ({} events, {} dropped, {} health findings)",
                tel.recorded(),
                tel.dropped(),
                driver.health_records().len()
            );
        }
        if let Some(path) = &args.metrics_out {
            let reg = tel.registry().expect("enabled telemetry has a registry");
            fs::write(path, prometheus::render(reg))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("prometheus metrics -> {path}");
        }
    }

    let history = driver.history();
    if let Some(path) = &args.out_csv {
        write_csv(path, history);
        eprintln!("time series -> {path} ({} rows)", history.len());
    }
    if let Some(wire) = driver.transport_counters() {
        eprintln!(
            "wire: {} frames / {} bytes sent, {} retransmits, {} deadline retries, \
             {} peers closed, {} timed out, {} workers spawned (+{} respawned)",
            wire.frames_sent,
            wire.bytes_sent,
            wire.wire_retransmits,
            wire.deadline_retries,
            wire.peers_closed,
            wire.peers_timed_out,
            wire.workers_spawned,
            wire.workers_respawned,
        );
    }
    let last = history.steps.last().expect("at least one step");
    if let Some(path) = &args.json {
        let mut doc = Json::obj([
            ("executor", Json::from(args.executor.as_str())),
            ("units", Json::from(args.units)),
            (
                "dims",
                Json::Arr(vec![
                    Json::from(dims.x),
                    Json::from(dims.y),
                    Json::from(dims.z),
                ]),
            ),
            ("steps", Json::from(steps)),
            ("num_foi", Json::from(num_foi)),
        ]);
        doc.push(
            "final",
            Json::obj([
                ("virions", Json::from(last.virions)),
                ("tcells_tissue", Json::from(last.tcells_tissue)),
                ("epi_healthy", Json::from(last.epi_healthy)),
                ("epi_dead", Json::from(last.epi_dead)),
            ]),
        );
        doc.push("step_records", step_records_json(&sink.records()));
        fs::write(path, doc.render()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("json summary -> {path}");
    }
    println!(
        "final: virions {:.4e}, tissue T cells {}, healthy {}, dead {}",
        last.virions, last.tcells_tissue, last.epi_healthy, last.epi_dead
    );
}

/// Fold the run's cumulative counters, health totals and telemetry
/// self-diagnostics into the registry before the Prometheus export.
fn publish_final_metrics(tel: &Telemetry, driver: &dyn Simulation) {
    let Some(reg) = tel.registry() else { return };
    let comm = driver.comm_counters();
    reg.counter(
        "simcov_comm_messages_total",
        "Point-to-point and bulk messages delivered",
    )
    .add(comm.messages + comm.bulk_messages);
    reg.counter(
        "simcov_comm_bytes_total",
        "Point-to-point and bulk payload bytes delivered",
    )
    .add(comm.bytes + comm.bulk_bytes);
    reg.counter("simcov_supersteps_total", "BSP supersteps executed")
        .add(comm.supersteps);
    reg.counter("simcov_allreduces_total", "Statistics allreduces executed")
        .add(comm.allreduces);
    let work = driver.total_counters();
    for (cat, cc) in [
        (KernelCategory::UpdateAgents, work.update),
        (KernelCategory::ReduceStats, work.reduce),
        (KernelCategory::TileCheck, work.tile_check),
        (KernelCategory::Halo, work.halo),
    ] {
        let labels = [("phase", cat.name())];
        reg.counter_with(
            "simcov_kernel_elements_total",
            "Elements processed per kernel phase",
            &labels,
        )
        .add(cc.elements);
        reg.counter_with(
            "simcov_kernel_bytes_total",
            "Bytes touched per kernel phase",
            &labels,
        )
        .add(cc.bytes);
        reg.counter_with(
            "simcov_kernel_launches_total",
            "Kernel launches per phase",
            &labels,
        )
        .add(cc.launches);
    }
    reg.gauge("simcov_active_units", "Active work units at run end")
        .set(driver.active_units() as f64);
    for (label, count) in [
        (
            "straggler",
            driver
                .health_records()
                .iter()
                .filter(|r| r.kind.label() == "health:straggler")
                .count(),
        ),
        (
            "load-imbalance",
            driver
                .health_records()
                .iter()
                .filter(|r| r.kind.label() == "health:load-imbalance")
                .count(),
        ),
        (
            "comm-spike",
            driver
                .health_records()
                .iter()
                .filter(|r| r.kind.label() == "health:comm-spike")
                .count(),
        ),
    ] {
        reg.counter_with(
            "simcov_health_findings_total",
            "Health findings by kind",
            &[("kind", label)],
        )
        .add(count as u64);
    }
    if let Some(wire) = driver.transport_counters() {
        for (name, help, value) in [
            (
                "simcov_wire_frames_sent_total",
                "Sealed frames shipped over the socket transport",
                wire.frames_sent,
            ),
            (
                "simcov_wire_bytes_sent_total",
                "Frame bytes shipped over the socket transport",
                wire.bytes_sent,
            ),
            (
                "simcov_wire_retransmits_total",
                "Inbox deliveries re-requested after garble or drop",
                wire.wire_retransmits,
            ),
            (
                "simcov_wire_deadline_retries_total",
                "Read-deadline expiries that were retried",
                wire.deadline_retries,
            ),
            (
                "simcov_wire_workers_respawned_total",
                "Workers respawned by elastic rebuilds",
                wire.workers_respawned,
            ),
        ] {
            reg.counter(name, help).add(value);
        }
    }
    reg.counter(
        "simcov_telemetry_events_total",
        "Span events recorded across all tracks",
    )
    .add(tel.recorded());
    reg.counter(
        "simcov_telemetry_dropped_total",
        "Span events dropped to ring wraparound",
    )
    .add(tel.dropped());
}

fn step_records_json(records: &[StepRecord]) -> Json {
    Json::Arr(
        records
            .iter()
            .map(|r| {
                let mut rec = Json::obj([
                    ("step", Json::from(r.step)),
                    ("agents", Json::from(r.agents)),
                    ("virions", Json::from(r.virions)),
                    ("chemokine", Json::from(r.chemokine)),
                    ("active_units", Json::from(r.active_units)),
                    ("comm_messages", Json::from(r.comm_messages)),
                    ("comm_bytes", Json::from(r.comm_bytes)),
                    ("sim_seconds", Json::from(r.sim_seconds)),
                    ("real_seconds", Json::from(r.real_seconds)),
                ]);
                rec.push(
                    "phase_seconds",
                    Json::obj(
                        r.phases
                            .cost
                            .phases()
                            .iter()
                            .map(|&(name, secs)| (name, Json::from(secs)))
                            .collect::<Vec<_>>(),
                    ),
                );
                if !r.recoveries.is_empty() {
                    rec.push(
                        "recoveries",
                        Json::Arr(
                            r.recoveries
                                .iter()
                                .map(|rv| {
                                    Json::obj([
                                        ("failed_step", Json::from(rv.failed_step)),
                                        ("rollback_step", Json::from(rv.rollback_step)),
                                        ("replayed_steps", Json::from(rv.replayed_steps)),
                                        ("survivors", Json::from(rv.survivors)),
                                        ("attempt", Json::from(rv.attempt as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    );
                }
                rec
            })
            .collect(),
    )
}
