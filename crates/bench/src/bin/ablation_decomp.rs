//! Ablation: linear vs block domain decomposition (§2.2, Fig. 1B).
//!
//! "The simulation is distributed to processes via either block or linear
//! domain decomposition, which has impacts on communication overhead."
//! This sweep quantifies that impact on the CPU baseline: strips minimize
//! the neighbor count (2) but maximize boundary length; blocks minimize
//! boundary length but talk to up to 8 neighbors.
//!
//! `--json <path>` additionally writes the sweep rows as JSON.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::{paper, scale_from_env, Experiment, ScaledExperiment};
use simcov_bench::json::{write_json, Json};
use simcov_bench::report::{banner, Table};
use simcov_core::decomp::Strategy;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::Simulation;

fn main() {
    let flags = CommonFlags::parse("usage: ablation_decomp [--json PATH]");
    let scale = scale_from_env().max(64);
    println!(
        "{}",
        banner(
            "Ablation: linear vs block decomposition (CPU baseline)",
            scale
        )
    );
    let e = Experiment {
        name: "decomp",
        grid_side: paper::STRONG_GRID,
        num_foi: paper::STRONG_FOI,
        steps: paper::STEPS,
        machine: paper::STRONG_MACHINES[1], // {8, 256}
    };
    let mut table = Table::new(&[
        "decomposition",
        "ranks",
        "p2p RPCs",
        "bulk puts",
        "boundary bytes",
        "max-rank voxel updates",
    ]);
    let mut rows = Vec::new();
    for (strategy, name) in [
        (Strategy::Blocks, "blocks"),
        (Strategy::Linear, "linear strips"),
    ] {
        for ranks in [64usize, 128] {
            let se = ScaledExperiment::new(e, scale, 1);
            let cfg = CpuSimConfig::new(se.params, ranks).with_strategy(strategy);
            let mut sim = CpuSim::new(cfg).expect("valid config");
            sim.run().expect("healthy run");
            let cc = sim.comm_counters();
            let max_updates = sim.max_rank_counters().update.elements;
            table.row(vec![
                name.to_string(),
                ranks.to_string(),
                cc.messages.to_string(),
                cc.bulk_messages.to_string(),
                (cc.bytes + cc.bulk_bytes).to_string(),
                max_updates.to_string(),
            ]);
            rows.push(Json::obj([
                ("decomposition", Json::from(name)),
                ("ranks", Json::from(ranks)),
                ("p2p_rpcs", Json::from(cc.messages)),
                ("bulk_puts", Json::from(cc.bulk_messages)),
                ("boundary_bytes", Json::from(cc.bytes + cc.bulk_bytes)),
                ("max_rank_voxel_updates", Json::from(max_updates)),
            ]));
        }
    }
    println!("{}", table.render());
    println!(
        "Expected: strips move more boundary bytes (longer cut) but in fewer, larger\n\
         puts; blocks cut total boundary length at the cost of 8-neighbor exchanges.\n\
         Both produce bitwise-identical simulations (tests/cross_executor.rs)."
    );
    if let Some(path) = flags.json {
        write_json(&path, &Json::obj([("rows", Json::Arr(rows))]));
    }
}
