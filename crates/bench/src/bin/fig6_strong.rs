//! Fig. 6 — strong scaling: fixed 10,000² / 16 FOI problem, compute
//! resources doubling from {4 GPUs, 128 cores} to {64 GPUs, 2048 cores}.

use simcov_bench::configs::{paper, scale_from_env, Experiment, ScaledExperiment};
use simcov_bench::report::{banner, fmt_secs, shape_verdict, Table};
use simcov_bench::runner::{run_cpu, run_gpu};
use simcov_gpu::GpuVariant;

fn main() {
    let scale = scale_from_env();
    println!("{}", banner("Fig 6: Strong scaling (10,000x10,000, 16 FOI)", scale));
    let mut table = Table::new(&[
        "{GPUs,CPUs}",
        "CPU runtime (s)",
        "GPU runtime (s)",
        "speedup",
        "paper speedup",
        "shape",
    ]);
    for (i, m) in paper::STRONG_MACHINES.iter().enumerate() {
        let e = Experiment {
            name: "strong",
            grid_side: paper::STRONG_GRID,
            num_foi: paper::STRONG_FOI,
            steps: paper::STEPS,
            machine: *m,
        };
        let se = ScaledExperiment::new(e, scale, 1);
        let cpu = run_cpu(se.params.clone(), m.cpus, scale);
        let gpu = run_gpu(se.params, m.gpus, GpuVariant::Combined, scale);
        let speedup = cpu.seconds / gpu.seconds;
        let paper_speedup = paper::STRONG_SPEEDUPS[i];
        table.row(vec![
            format!("{{{},{}}}", m.gpus, m.cpus),
            fmt_secs(cpu.seconds),
            fmt_secs(gpu.seconds),
            format!("{speedup:.2}x"),
            format!("{paper_speedup:.2}x"),
            shape_verdict(paper_speedup, speedup).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: GPU wins ~5x at the base allocation; the advantage decays as GPUs\n\
         exceed the problem size, dropping below 1x at {{64,2048}} (paper: 4.98 -> 0.85)."
    );
}
