//! Fig. 6 — strong scaling: fixed 10,000² / 16 FOI problem, compute
//! resources doubling from {4 GPUs, 128 cores} to {64 GPUs, 2048 cores}.
//!
//! `--json <path>` additionally writes the sweep points as JSON.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::scale_from_env;
use simcov_bench::experiments::fig6;
use simcov_bench::json::write_json;

fn main() {
    let flags = CommonFlags::parse("usage: fig6_strong [--json PATH]");
    let scale = scale_from_env();
    let result = fig6(scale);
    println!("{}", result.render_strong());
    if let Some(path) = flags.json {
        write_json(&path, &result.to_json());
    }
}
