//! `replay_check` — the event-log replay gate.
//!
//! Runs seeded fault cascades on the CPU and GPU executors with
//! control-plane event recording on, then folds each recorded log through
//! the pure core (`simcov_driver::replay`) with **zero** filesystem,
//! checkpoint-store or executor access, and verifies the replayed
//! trajectory lands bit-for-bit on the live run's control state and record
//! streams. Any divergence means the shell made a decision the core
//! doesn't own — exactly the regression the pure-core split exists to
//! prevent. Exit code 0 on success, 1 on divergence.
//!
//! ```text
//! replay_check [--steps N] [--grid N]
//! ```

use pgas::{FaultEvent, FaultKind, FaultPlan};
use simcov_bench::cli::{self, CommonFlags};
use simcov_core::grid::GridDims;
use simcov_core::params::SimParams;
use simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_driver::{replay, RecoveryPolicy, Simulation};
use simcov_gpu::{GpuSim, GpuSimConfig};

fn death(superstep: u64, rank: usize) -> FaultEvent {
    FaultEvent {
        superstep,
        rank,
        kind: FaultKind::RankDeath,
    }
}

/// Replay `sim`'s recorded log and compare against its live control plane.
/// Returns the number of mismatches (0 = exact).
fn check(label: &str, sim: &dyn Simulation) -> u32 {
    let Some(initial) = sim.replay_initial_state() else {
        println!("FAIL {label}: executor exposes no replay snapshot");
        return 1;
    };
    let log = sim.event_log();
    if log.is_empty() {
        println!("FAIL {label}: no events recorded");
        return 1;
    }
    let r = replay(initial.clone(), log);
    let mut bad = 0;
    let live = sim.control_state().expect("recording implies a state");
    if &r.final_state != live {
        println!("FAIL {label}: replayed control state diverged from live");
        bad += 1;
    }
    if r.final_state.recovery_log.as_slice() != sim.recovery_log() {
        println!(
            "FAIL {label}: replayed recovery stream diverged ({} vs {} records)",
            r.final_state.recovery_log.len(),
            sim.recovery_log().len()
        );
        bad += 1;
    }
    if bad == 0 {
        println!(
            "PASS {label}: {} events -> {} recoveries, {} integrity records, halt={}",
            log.len(),
            r.final_state.recovery_log.len(),
            r.final_state.integrity_log.len(),
            r.halt.is_some(),
        );
    }
    bad
}

fn main() {
    let mut steps = 60u64;
    let mut grid = 32u32;
    let (_, rest) = CommonFlags::parse_with_rest();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--steps" => steps = cli::parse_value(&a, it.next()),
            "--grid" => grid = cli::parse_value(&a, it.next()),
            other => cli::die_unknown(other, "usage: replay_check [--steps N] [--grid N]"),
        }
    }
    let params = |seed: u64| SimParams::test_config(GridDims::new2d(grid, grid), steps, 8, seed);
    let mut failures = 0u32;

    // CPU: rank death mid-run plus a silent state corruption.
    let plan = FaultPlan::from_events(vec![
        death(steps + steps / 2, 1), // 3 supersteps/step: mid-run
        FaultEvent {
            superstep: steps,
            rank: 0,
            kind: FaultKind::StateCorruption { seed: 0xDEAD },
        },
    ]);
    let mut cpu = CpuSim::new(CpuSimConfig::new(params(3), 4).with_fault_plan(plan))
        .expect("valid cpu config");
    cpu.enable_event_recording();
    cpu.run().expect("recovery absorbs the cascade");
    failures += check("cpu cascade", &cpu);

    // GPU: device death with a short checkpoint period.
    let plan = FaultPlan::from_events(vec![death(steps, 2)]); // 2 supersteps/step
    let mut gpu = GpuSim::new(
        GpuSimConfig::new(params(5), 4)
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy {
                checkpoint_period: 4,
                ..RecoveryPolicy::default()
            }),
    )
    .expect("valid gpu config");
    gpu.enable_event_recording();
    gpu.run().expect("recovery absorbs the death");
    failures += check("gpu death", &gpu);

    // Fatal storm: the replay must reproduce the terminal halt too.
    let plan = FaultPlan::from_events((9..steps).map(|s| death(s, 0)).collect());
    let mut fatal = CpuSim::new(
        CpuSimConfig::new(params(13), 4)
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy {
                checkpoint_period: 1,
                max_retries: 2,
                backoff_base_ns: 1_000,
            }),
    )
    .expect("valid cpu config");
    fatal.enable_event_recording();
    let err = fatal.run().expect_err("the storm must exhaust retries");
    failures += check("fatal storm", &fatal);
    let r = replay(
        fatal.replay_initial_state().expect("recorded").clone(),
        fatal.event_log(),
    );
    if r.halt.is_none() {
        println!("FAIL fatal storm: live run errored ({err}) but replay sees no halt");
        failures += 1;
    }

    if failures > 0 {
        println!("replay_check: {failures} divergence(s)");
        std::process::exit(1);
    }
    println!("replay_check: all event logs replay exactly");
}
