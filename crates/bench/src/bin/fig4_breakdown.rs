//! Fig. 4 — optimization breakdown (§3.4): the four SIMCoV-GPU variants
//! profiled on a dense-activity simulation (1024 FOI, 4 devices, one node),
//! split into "Update Agents" and "Reduce Statistics" time.
//!
//! `--json <path>` additionally writes the rows and shape checks as JSON.

use simcov_bench::cli::CommonFlags;
use simcov_bench::configs::scale_from_env;
use simcov_bench::experiments::fig4;
use simcov_bench::json::write_json;

fn main() {
    let flags = CommonFlags::parse("usage: fig4_breakdown [--json PATH]");
    let scale = scale_from_env();
    let result = fig4(scale);
    println!("{}", result.render());
    if let Some(path) = flags.json {
        write_json(&path, &result.to_json());
    }
}
