//! Fig. 4 — optimization breakdown (§3.4): the four SIMCoV-GPU variants
//! profiled on a dense-activity simulation (1024 FOI, 4 devices, one node),
//! split into "Update Agents" and "Reduce Statistics" time.

use simcov_bench::configs::{paper, scale_from_env, Experiment, ScaledExperiment};
use simcov_bench::report::{banner, fmt_secs, Table};
use simcov_bench::runner::run_gpu;
use simcov_gpu::GpuVariant;

fn main() {
    let scale = scale_from_env();
    println!(
        "{}",
        banner("Fig 4: SIMCoV-GPU optimization breakdown (1024 FOI, 4 GPUs)", scale)
    );
    let e = Experiment {
        name: "fig4",
        grid_side: paper::FIG4_GRID,
        num_foi: paper::FIG4_FOI,
        steps: paper::STEPS,
        machine: paper::FIG4_MACHINE,
    };
    let mut table = Table::new(&[
        "variant",
        "update agents (s)",
        "reduce statistics (s)",
        "total (s)",
    ]);
    let mut totals = Vec::new();
    for v in GpuVariant::ALL {
        let se = ScaledExperiment::new(e, scale, 1);
        let out = run_gpu(se.params, 4, v, scale);
        // Fig 4's two categories: tile checks and halo work belong to the
        // agent-update pipeline.
        let update = out.breakdown.update_s + out.breakdown.tile_s + out.breakdown.halo_s
            + out.comm_seconds;
        let reduce = out.breakdown.reduce_s;
        totals.push((v, update, reduce));
        table.row(vec![
            v.name().to_string(),
            fmt_secs(update),
            fmt_secs(reduce),
            fmt_secs(update + reduce),
        ]);
    }
    println!("{}", table.render());

    // Shape assertions from the paper's Fig 4.
    let get = |v: GpuVariant| totals.iter().find(|(x, _, _)| *x == v).unwrap();
    let unopt = get(GpuVariant::Unoptimized);
    let fast = get(GpuVariant::FastReduction);
    let tiling = get(GpuVariant::MemoryTiling);
    let combined = get(GpuVariant::Combined);
    println!("Shape checks (paper Fig 4):");
    println!(
        "  reductions dominate the unoptimized variant: {} (reduce {} vs update {})",
        if unopt.2 > unopt.1 { "✓" } else { "✗" },
        fmt_secs(unopt.2),
        fmt_secs(unopt.1)
    );
    println!(
        "  fast reduction slashes reduce time: {} ({} -> {})",
        if fast.2 < 0.5 * unopt.2 { "✓" } else { "✗" },
        fmt_secs(unopt.2),
        fmt_secs(fast.2)
    );
    println!(
        "  memory tiling cuts update time: {} ({} -> {})",
        if tiling.1 < unopt.1 { "✓" } else { "✗" },
        fmt_secs(unopt.1),
        fmt_secs(tiling.1)
    );
    println!(
        "  memory tiling also helps reductions (locality): {} ({} -> {})",
        if tiling.2 < unopt.2 { "✓" } else { "✗" },
        fmt_secs(unopt.2),
        fmt_secs(tiling.2)
    );
    println!(
        "  optimizations compose ~independently: {} (combined {} vs best-single {})",
        if combined.1 + combined.2 < (fast.1 + fast.2).min(tiling.1 + tiling.2) {
            "✓"
        } else {
            "✗"
        },
        fmt_secs(combined.1 + combined.2),
        fmt_secs((fast.1 + fast.2).min(tiling.1 + tiling.2))
    );
}
