//! Bench-side JSON conveniences over the workspace [`Json`] value type.
//!
//! The tree type, serializer and parser live in [`simcov_core::json`] (the
//! sweep job server shares them); this module re-exports the type and keeps
//! the bench-binary I/O helpers.

pub use simcov_core::json::Json;

/// `--json <path>` from the process arguments, if present (the shared CLI
/// convention of every bench binary).
pub fn json_path_from_args() -> Option<String> {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--json" {
            match it.next() {
                Some(p) => return Some(p),
                None => {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Write a rendered document, reporting the destination on stderr. Exits
/// with status 2 on I/O failure (clean error, no panic — the artifact path
/// is only known to be bad after the experiment has already run).
pub fn write_json(path: &str, doc: &Json) {
    if let Err(e) = std::fs::write(path, doc.render()) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("json artifact -> {path}");
}
