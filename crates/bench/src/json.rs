//! A minimal hand-rolled JSON value builder and serializer.
//!
//! The workspace is dependency-free, so bench artifacts are emitted through
//! this small tree type instead of serde. Only what the bench harness needs
//! is implemented: construction from Rust primitives, object/array
//! composition, and rendering to a valid RFC 8259 document (pretty-printed,
//! two-space indent). Non-finite floats serialize as `null` — JSON has no
//! encoding for them and a crash in a report writer would lose the run.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers ride as f64 (the JSON number model); u64 counters in
    /// practice stay far below 2^53 so the conversion is exact.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Self {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Append a field to an object (panics on non-objects: builder misuse).
    pub fn push<K: Into<String>, V: Into<Json>>(&mut self, key: K, value: V) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Serialize to a pretty-printed document (two-space indent, `\n`
    /// separators, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        // Integral values print without a fraction.
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `--json <path>` from the process arguments, if present (the shared CLI
/// convention of every bench binary).
pub fn json_path_from_args() -> Option<String> {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--json" {
            match it.next() {
                Some(p) => return Some(p),
                None => {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Write a rendered document, reporting the destination on stderr. Exits
/// with status 2 on I/O failure (clean error, no panic — the artifact path
/// is only known to be bad after the experiment has already run).
pub fn write_json(path: &str, doc: &Json) {
    if let Err(e) = std::fs::write(path, doc.render()) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("json artifact -> {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::from(true).render(), "true\n");
        assert_eq!(Json::from(42u64).render(), "42\n");
        assert_eq!(Json::from(1.5).render(), "1.5\n");
        assert_eq!(Json::from("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn escapes_strings() {
        let s = Json::from("a\"b\\c\nd\te\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null\n");
        assert_eq!(Json::from(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn renders_nested_structures() {
        let mut doc = Json::obj([("name", Json::from("run"))]);
        doc.push(
            "points",
            Json::Arr(vec![Json::from(1u64), Json::from(2u64)]),
        );
        doc.push("empty", Json::Arr(vec![]));
        doc.push("nested", Json::obj([("ok", Json::from(true))]));
        let text = doc.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"run\",\n  \"points\": [\n    1,\n    2\n  ],\n  \
             \"empty\": [],\n  \"nested\": {\n    \"ok\": true\n  }\n}\n"
        );
    }

    #[test]
    fn integral_floats_have_no_fraction() {
        assert_eq!(Json::from(3.0).render(), "3\n");
        assert_eq!(Json::from(0.25).render(), "0.25\n");
        // Big counters still within exact-f64 range keep full precision.
        assert_eq!(
            Json::from(9_007_199_254_740_992u64).render(),
            "9007199254740992\n"
        );
    }
}
