//! Report formatting: paper-style tables with paper-vs-measured columns.

/// Format a runtime in seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

/// A simple fixed-width text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Compare a measured ratio against the paper's: returns a ✓/≈/✗ shape
/// verdict (within 35 % relative → ✓, within a factor of 2 → ≈).
pub fn shape_verdict(paper: f64, measured: f64) -> &'static str {
    if paper <= 0.0 || measured <= 0.0 {
        return "✗";
    }
    let ratio = (measured / paper).max(paper / measured);
    if ratio <= 1.35 {
        "✓"
    } else if ratio <= 2.0 {
        "≈"
    } else {
        "✗"
    }
}

/// A standard experiment banner.
pub fn banner(title: &str, scale: u32) -> String {
    format!(
        "== {title} ==\n(scaled 1/{scale} linearly; work counters extrapolated to paper scale; \
         simulated seconds from the calibrated A100/CPU-node cost model)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["xxxx".into(), "y".into(), "z".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn verdicts() {
        assert_eq!(shape_verdict(4.98, 5.0), "✓");
        assert_eq!(shape_verdict(4.98, 3.8), "✓");
        assert_eq!(shape_verdict(4.98, 8.0), "≈");
        assert_eq!(shape_verdict(4.98, 15.0), "✗");
        assert_eq!(shape_verdict(1.0, 0.0), "✗");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(1234.5), "1234");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(0.1234), "0.123");
    }
}
