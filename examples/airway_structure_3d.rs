//! 3D simulation with a branching airway structure overlaid on the voxel
//! volume (paper §2.2 / §6: "other spatial topologies such as fractal
//! branching airways can be easily tested by overlaying the topology on the
//! voxels"). Demonstrates 3D domain decomposition (27-neighbor halos) and
//! that structure voxels stay inert across executors.
//!
//! ```sh
//! cargo run --release --example airway_structure_3d
//! ```

use simcov_repro::simcov_core::airways::{airway_voxels, AirwayTree};
use simcov_repro::simcov_core::epithelial::EpiState;
use simcov_repro::simcov_core::foi::FoiPattern;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::serial::SerialSim;
use simcov_repro::simcov_core::world::World;
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn main() {
    let dims = GridDims::new3d(48, 48, 48);
    let params = SimParams::scaled_to(dims, 300, 8, 5);
    params.validate().unwrap();

    // Carve a 5-generation airway tree through the volume.
    let tree = AirwayTree {
        generations: 5,
        ..Default::default()
    };
    let airways = airway_voxels(dims, &tree);
    let mut world = World::seeded(&params, FoiPattern::UniformLattice);
    world.carve_airways(&airways);
    println!(
        "3D lung volume {}x{}x{}: carved {} airway voxels ({:.1}% of volume)",
        dims.x,
        dims.y,
        dims.z,
        airways.len(),
        100.0 * airways.len() as f64 / dims.nvoxels() as f64
    );

    // Run on 8 simulated devices with 3D block decomposition and verify
    // against the serial reference.
    let mut gpu = GpuSim::from_world(GpuSimConfig::new(params.clone(), 8), world.clone())
        .expect("valid config");
    gpu.run().expect("healthy run");
    let mut serial = SerialSim::from_world(params, world);
    serial.run();
    assert!(
        serial.world.first_difference(&gpu.gather_world()).is_none(),
        "3D GPU run diverged from serial"
    );
    println!("gpu(8 devices, 3D blocks) == serial: bitwise identical");

    // Airway voxels stayed inert.
    let final_world = gpu.gather_world();
    for &idx in &airways {
        assert_eq!(final_world.epi.get(idx), EpiState::Airway);
    }
    println!("all {} airway voxels remained inert", airways.len());

    let last = gpu.last_stats().unwrap();
    println!(
        "final state: virions {:.3e}, dead epithelium {}, tissue T cells {}",
        last.virions, last.epi_dead, last.tcells_tissue
    );
    // Infection must have progressed around the airway structure.
    assert!(last.epi_dead > 0, "infection should kill tissue in 3D too");
}
