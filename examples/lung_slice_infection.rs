//! A patient-scale scenario (scaled): a 2D slice of lung tissue with the
//! paper's 16-FOI seeding, run on the GPU executor, logging the aggregate
//! statistics SIMCoV reports (paper Fig. 5) plus ASCII snapshots of the
//! spreading infection and immune response.
//!
//! ```sh
//! cargo run --release --example lung_slice_infection
//! ```

use simcov_repro::simcov_core::epithelial::EpiState;
use simcov_repro::simcov_core::grid::{Coord, GridDims};
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::stats::Metric;
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

/// Render the world as ASCII: infection states and T cells.
fn snapshot(sim: &GpuSim, rows: usize, cols: usize) -> String {
    let world = sim.gather_world();
    let dims = world.dims;
    let mut out = String::new();
    for r in 0..rows {
        for c in 0..cols {
            let x = (c as i64 * dims.x as i64) / cols as i64;
            let y = (r as i64 * dims.y as i64) / rows as i64;
            let i = dims.index(Coord::new(x, y, 0));
            let ch = if world.tcells[i].occupied() {
                'T'
            } else {
                match world.epi.get(i) {
                    EpiState::Healthy => {
                        if world.virions.get(i) > 0.0 {
                            '~' // virions present
                        } else {
                            '.'
                        }
                    }
                    EpiState::Incubating => 'i',
                    EpiState::Expressing => 'E',
                    EpiState::Apoptotic => 'a',
                    EpiState::Dead => '#',
                    EpiState::Airway => ' ',
                }
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

fn main() {
    // 1/64-scale version of the paper's correctness configuration:
    // 10,000^2 -> 156^2, 33,120 steps -> 518, 16 FOI.
    let params = SimParams::scaled_to(GridDims::new2d(156, 156), 518, 16, 7);
    let steps = params.steps;
    let mut sim = GpuSim::new(GpuSimConfig::new(params, 4)).expect("valid config");

    println!("legend: . healthy | ~ virions | i incubating | E expressing | a apoptotic | # dead | T T cell\n");
    let snaps = [steps / 4, steps / 2, 3 * steps / 4, steps - 1];
    let mut next = 0usize;
    while sim.step() < steps {
        sim.advance_step().expect("healthy step");
        if next < snaps.len() && sim.step() - 1 == snaps[next] {
            let s = sim.last_stats().unwrap();
            println!(
                "--- step {} | virions {:.2e} | tissue T cells {} | dead {} ---",
                s.step, s.virions, s.tcells_tissue, s.epi_dead
            );
            println!("{}", snapshot(&sim, 32, 64));
            next += 1;
        }
    }

    println!(
        "peak viral load:        {:.3e}",
        sim.history().peak(Metric::Virions)
    );
    println!(
        "peak tissue T cells:    {}",
        sim.history().peak(Metric::TCellsTissue)
    );
    println!(
        "peak apoptotic cells:   {}",
        sim.history().peak(Metric::EpiApoptotic)
    );
    println!(
        "epithelium killed:      {} of {}",
        sim.history().steps.last().unwrap().epi_dead,
        sim.params().dims.nvoxels()
    );
    println!(
        "active tiles at end:    {:.1}% (memory tiling, §3.2)",
        100.0
            * sim
                .devices
                .iter()
                .map(|d| d.active_tile_fraction())
                .sum::<f64>()
            / sim.devices.len() as f64
    );
}
