//! Quickstart: run a small SIMCoV infection three ways — the serial
//! reference, the CPU baseline (4 ranks) and the GPU executor (4 simulated
//! devices) — and confirm they produce the identical trajectory.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::serial::SerialSim;
use simcov_repro::simcov_core::stats::Metric;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn main() {
    // A 128x128 lung-tissue slice, 400 one-minute timesteps, 4 foci of
    // infection, with the immune response compressed so the full disease
    // arc (infection -> T-cell response -> clearance) fits the run.
    let params = SimParams::scaled_to(GridDims::new2d(128, 128), 400, 4, 2024);
    println!(
        "SIMCoV quickstart: {}x{} voxels, {} steps, {} FOI, seed {}",
        params.dims.x, params.dims.y, params.steps, params.num_foi, params.seed
    );

    // 1. Serial reference.
    let mut serial = SerialSim::new(params.clone());
    serial.run();

    // 2. CPU baseline on 4 ranks (active lists + RPCs).
    let mut cpu = CpuSim::new(CpuSimConfig::new(params.clone(), 4)).expect("valid config");
    cpu.run().expect("healthy run");

    // 3. GPU executor on 4 simulated devices (tiles + halos + bids).
    let mut gpu = GpuSim::new(GpuSimConfig::new(params, 4)).expect("valid config");
    gpu.run().expect("healthy run");

    // All three produce the same simulation, voxel for voxel.
    assert!(
        serial.world.first_difference(&cpu.gather_world()).is_none(),
        "CPU diverged from serial"
    );
    assert!(
        serial.world.first_difference(&gpu.gather_world()).is_none(),
        "GPU diverged from serial"
    );
    println!("serial == cpu(4 ranks) == gpu(4 devices): bitwise identical\n");

    // Print the infection trajectory.
    println!(
        "{:>6} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "step", "virions", "tcells", "incub", "express", "dead"
    );
    for s in serial.history.steps.iter().step_by(40) {
        println!(
            "{:>6} {:>14.1} {:>10} {:>10} {:>10} {:>10}",
            s.step, s.virions, s.tcells_tissue, s.epi_incubating, s.epi_expressing, s.epi_dead
        );
    }
    let peak = serial.history.peak(Metric::Virions);
    let dead = serial.history.steps.last().unwrap().epi_dead;
    println!("\npeak viral load: {peak:.1}; epithelial cells killed: {dead}");

    // The GPU executor also metered its (simulated-device) work:
    let c = gpu.total_counters();
    println!(
        "GPU work: {} voxel updates, {} reduce elements, {} kernel launches, {} halo bytes",
        c.update.elements,
        c.reduce.elements,
        c.update.launches + c.reduce.launches + c.tile_check.launches + c.halo.launches,
        c.halo.bytes
    );
}
