//! Drive a run from a SIMCoV-style config file and write PPM visualization
//! frames (the workflow of the open-source SIMCoV: config in, time series
//! and renders out).
//!
//! ```sh
//! cargo run --release --example config_driven_run
//! ls simcov_frames/
//! ```

use simcov_repro::simcov_core::config::{parse_config, to_config};
use simcov_repro::simcov_core::render::render_slice;
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};
use std::fs;

const CONFIG: &str = "\
; SIMCoV-style configuration (scaled demo of the paper's defaults)
dim = 144 144 1
timesteps = 480
seed = 29
num-infections = 9
; disease dynamics compressed ~69x relative to the 33,120-step default
infectivity = 0.069
virion-production = 75.9
virion-clearance = 0.276
virion-diffusion = 0.0022
chemokine-production = 69.0
chemokine-decay = 0.69
chemokine-diffusion = 0.0145
incubation-period = 7.0
expressing-period = 13.0
apoptosis-period = 2.6
tcell-generation-rate = 30
tcell-initial-delay = 146
tcell-vascular-period = 83
tcell-tissue-period = 21
tcell-binding-period = 10
max-binding-prob = 1
initial-infection = 1000
";

fn main() {
    let params = parse_config(CONFIG).expect("config parses");
    println!("parsed config:\n{}", to_config(&params));

    let steps = params.steps;
    let mut sim = GpuSim::new(GpuSimConfig::new(params, 4)).expect("valid config");

    let dir = "simcov_frames";
    fs::create_dir_all(dir).expect("create frame dir");
    let frame_every = steps / 6;
    let mut frames = 0;
    while sim.step() < steps {
        sim.advance_step().expect("healthy step");
        if sim.step().is_multiple_of(frame_every) || sim.step() == steps {
            let world = sim.gather_world();
            let img = render_slice(&world, 0, 288);
            let path = format!("{dir}/step_{:05}.ppm", sim.step());
            fs::write(&path, img.to_ppm()).expect("write frame");
            frames += 1;
            let s = sim.last_stats().unwrap();
            println!(
                "wrote {path} | virions {:.3e} | T cells {} | dead {}",
                s.virions, s.tcells_tissue, s.epi_dead
            );
        }
    }
    println!("\n{frames} frames in ./{dir} (PPM; open with any image viewer)");
}
