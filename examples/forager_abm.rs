//! A different ABM on the same substrates — the paper's generality claim
//! (§6): "according to forks of the public repository, [SIMCoV] is already
//! being used as a platform for creating other ABMs... including a
//! simulation of large populations of ant-like foragers."
//!
//! This example builds exactly that: ant-like foragers random-walk from a
//! nest, pick up food, and lay a diffusing pheromone trail — reusing the
//! workspace substrates directly (PGAS runtime + BSP supersteps, domain
//! decomposition with halo boxes, the bid-based conflict resolution of
//! §3.1, the diffusion stencil, and the counter RNG), with none of the
//! SIMCoV disease rules. The same machinery covers "spreading
//! concentrations to spatial competition for resources" (§6).
//!
//! ```sh
//! cargo run --release --example forager_abm
//! ```

use simcov_repro::pgas::{Bsp, Outbox, WorkPool};
use simcov_repro::simcov_core::decomp::{Partition, Strategy, Subdomain};
use simcov_repro::simcov_core::diffusion::diffuse_voxel;
use simcov_repro::simcov_core::grid::{Coord, GridDims};
use simcov_repro::simcov_core::halo::HaloBox;
use simcov_repro::simcov_core::rng::{CounterRng, Stream};
use simcov_repro::simcov_core::rules::Bid;

const SEED: u64 = 77;
const GRID: u32 = 96;
const STEPS: u64 = 400;
const RANKS: usize = 4;
const N_FOOD_PILES: usize = 5;
const PHEROMONE_DEPOSIT: f32 = 1.0;
const PHEROMONE_DECAY: f32 = 0.02;
const PHEROMONE_DIFFUSION: f32 = 0.2;

/// Per-voxel forager slot: 0 = empty, 1 = searching, 2 = carrying food.
type Ant = u8;

/// Messages: the §3.1 bid wave plus the end-of-step halo wave — the same
/// two-wave structure as SIMCoV-GPU.
#[derive(Clone, Debug)]
enum Msg {
    Bids(Vec<(u64, u128)>),
    Halo(Vec<(u64, Ant, f32, f32)>), // gid, ant, pheromone, food
}

// Opaque to the SDC payload injector: the example runs no fault plans, so
// the default no-op digest/corrupt hooks are all it needs.
impl simcov_repro::pgas::Payload for Msg {}

impl simcov_repro::pgas::counters::WireSize for Msg {
    fn wire_size(&self) -> usize {
        match self {
            Msg::Bids(v) => 16 + v.len() * 24,
            Msg::Halo(v) => 16 + v.len() * 17,
        }
    }
    fn is_bulk(&self) -> bool {
        true
    }
}

struct ForagerRank {
    hb: HaloBox,
    dims: GridDims,
    neighbors: Vec<(usize, Subdomain)>,
    ants: Vec<Ant>,
    pheromone: Vec<f32>,
    food: Vec<f32>,
    bids: Vec<Bid>,
    touched: Vec<u32>,
    plans: Vec<(u32, Coord, Bid)>, // src local, target, bid
    delivered: u64,
}

impl ForagerRank {
    fn new(rank: usize, partition: &Partition, nest: Coord, piles: &[Coord]) -> Self {
        let hb = HaloBox::new(partition.dims, *partition.sub(rank));
        let n = hb.len();
        let mut s = ForagerRank {
            hb,
            dims: partition.dims,
            neighbors: partition
                .neighbor_ranks(rank)
                .into_iter()
                .map(|r| (r, *partition.sub(r)))
                .collect(),
            ants: vec![0; n],
            pheromone: vec![0.0; n],
            food: vec![0.0; n],
            bids: vec![Bid::EMPTY; n],
            touched: Vec::new(),
            plans: Vec::new(),
            delivered: 0,
        };
        // Spawn a block of ants around the nest; drop food piles.
        for dy in -2i64..=2 {
            for dx in -2i64..=2 {
                let c = nest.offset(dx, dy, 0);
                if s.dims.in_bounds(c) && s.hb.covers(c) {
                    s.ants[s.hb.local(c)] = 1;
                }
            }
        }
        for &p in piles {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let c = p.offset(dx, dy, 0);
                    if s.dims.in_bounds(c) && s.hb.covers(c) {
                        s.food[s.hb.local(c)] = 20.0;
                    }
                }
            }
        }
        s
    }

    /// Superstep 1: plan moves with bids (pheromone-biased random walk).
    fn plan(&mut self, t: u64, inbox: &[Msg], out: &mut Outbox<Msg>) {
        // Halo refresh.
        for m in inbox {
            if let Msg::Halo(cells) = m {
                for &(gid, ant, ph, food) in cells {
                    let li = self.hb.local(self.dims.coord(gid as usize));
                    self.ants[li] = ant;
                    self.pheromone[li] = ph;
                    self.food[li] = food;
                }
            }
        }
        self.plans.clear();
        for li in self.touched.drain(..) {
            self.bids[li as usize] = Bid::EMPTY;
        }
        let mut touched = Vec::new();
        for c in self.hb.core.iter_coords() {
            let li = self.hb.local(c);
            if self.ants[li] == 0 {
                continue;
            }
            let gid = self.dims.index(c) as u64;
            // Carriers walk home (toward the nest at the grid center);
            // searchers follow pheromone with random exploration.
            let mut rng = CounterRng::new(SEED, Stream::TCellAction, t, gid);
            let offs = self.dims.neighbor_offsets();
            let target = if self.ants[li] == 2 {
                let nest = Coord::new(GRID as i64 / 2, GRID as i64 / 2, 0);
                // Greedy step toward the nest.
                let mut best = c;
                let mut best_d = c.chebyshev(nest);
                for &(dx, dy, dz) in offs {
                    let q = c.offset(dx, dy, dz);
                    if self.dims.in_bounds(q) && q.chebyshev(nest) < best_d {
                        best = q;
                        best_d = q.chebyshev(nest);
                    }
                }
                best
            } else if rng.chance(0.7) {
                // Follow the strongest pheromone gradient.
                let mut best = c;
                let mut best_p = self.pheromone[li];
                for &(dx, dy, dz) in offs {
                    let q = c.offset(dx, dy, dz);
                    if self.dims.in_bounds(q) && self.pheromone[self.hb.local(q)] > best_p {
                        best = q;
                        best_p = self.pheromone[self.hb.local(q)];
                    }
                }
                if best == c {
                    let (dx, dy, dz) = offs[rng.below(offs.len() as u64) as usize];
                    c.offset(dx, dy, dz)
                } else {
                    best
                }
            } else {
                let (dx, dy, dz) = offs[rng.below(offs.len() as u64) as usize];
                c.offset(dx, dy, dz)
            };
            if !self.dims.in_bounds(target) || target == c {
                continue;
            }
            if self.ants[self.hb.local(target)] != 0 {
                continue; // ants collide like T cells do (§3.1)
            }
            let bid = Bid::new(
                CounterRng::new(SEED, Stream::TCellBid, t, gid).next_u64(),
                gid,
            );
            let tl = self.hb.local(target);
            self.bids[tl] = self.bids[tl].merge(bid);
            touched.push(tl as u32);
            self.plans.push((li as u32, target, bid));
        }
        touched.sort_unstable();
        touched.dedup();
        // Bid wave to every holder of the contested voxels.
        let mut per_neighbor: Vec<Vec<(u64, u128)>> = vec![Vec::new(); self.neighbors.len()];
        for &tl in &touched {
            let c = self.hb.global(tl as usize);
            for (i, (_, nsub)) in self.neighbors.iter().enumerate() {
                if nsub.in_halo_reach(c) {
                    per_neighbor[i].push((self.dims.index(c) as u64, self.bids[tl as usize].0));
                }
            }
        }
        for (i, cells) in per_neighbor.into_iter().enumerate() {
            if !cells.is_empty() {
                out.send(self.neighbors[i].0, Msg::Bids(cells));
            }
        }
        self.touched = touched;
    }

    /// Superstep 2: resolve winners, move, interact, diffuse, push halo.
    fn update(&mut self, t: u64, inbox: &[Msg], out: &mut Outbox<Msg>) -> u64 {
        let _ = t;
        for m in inbox {
            if let Msg::Bids(cells) = m {
                for &(gid, bid) in cells {
                    let li = self.hb.local(self.dims.coord(gid as usize));
                    self.bids[li] = self.bids[li].merge(Bid(bid));
                    self.touched.push(li as u32);
                }
            }
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        // Apply: winners move (owner instantiates movers-in, source erases).
        let plans = std::mem::take(&mut self.plans);
        for &(src, target, bid) in &plans {
            let tl = self.hb.local(target);
            if self.bids[tl] == bid {
                if self.hb.is_core(target) {
                    self.ants[tl] = self.ants[src as usize];
                }
                self.ants[src as usize] = 0;
            }
        }
        self.plans = plans;
        let touched = std::mem::take(&mut self.touched);
        for &tl in &touched {
            let c = self.hb.global(tl as usize);
            let b = self.bids[tl as usize];
            if !b.is_empty() && self.hb.is_core(c) && self.ants[tl as usize] == 0 {
                let src = self.dims.coord(b.src() as usize);
                if !self.hb.is_core(src) {
                    // Mover arriving from a neighbor rank.
                    self.ants[tl as usize] = self.ants[self.hb.local(src)];
                }
            }
        }
        self.touched = touched;

        // Interactions + pheromone deposit.
        let nest = Coord::new(GRID as i64 / 2, GRID as i64 / 2, 0);
        let mut delivered_now = 0u64;
        for c in self.hb.core.iter_coords() {
            let li = self.hb.local(c);
            match self.ants[li] {
                1 if self.food[li] > 0.0 => {
                    self.food[li] -= 1.0;
                    self.ants[li] = 2;
                }
                2 => {
                    self.pheromone[li] = (self.pheromone[li] + PHEROMONE_DEPOSIT).min(1.0);
                    if c.chebyshev(nest) <= 2 {
                        self.ants[li] = 1;
                        delivered_now += 1;
                    }
                }
                _ => {}
            }
        }
        self.delivered += delivered_now;

        // Pheromone diffusion (the same stencil as SIMCoV concentrations).
        let mut new_ph = self.pheromone.clone();
        for c in self.hb.core.iter_coords() {
            let li = self.hb.local(c);
            let mut sum = 0.0;
            let mut nv = 0;
            for &(dx, dy, dz) in self.dims.neighbor_offsets() {
                let q = c.offset(dx, dy, dz);
                if self.dims.in_bounds(q) {
                    sum += self.pheromone[self.hb.local(q)];
                    nv += 1;
                }
            }
            new_ph[li] = diffuse_voxel(
                self.pheromone[li],
                sum,
                nv,
                PHEROMONE_DIFFUSION,
                PHEROMONE_DECAY,
                1e-6,
            );
        }
        self.pheromone = new_ph;

        // Halo push.
        let mut per_neighbor: Vec<Vec<(u64, Ant, f32, f32)>> =
            vec![Vec::new(); self.neighbors.len()];
        for c in self.hb.core.iter_coords() {
            if !self.hb.is_boundary(c) {
                continue;
            }
            let li = self.hb.local(c);
            for (i, (_, nsub)) in self.neighbors.iter().enumerate() {
                if nsub.in_halo_reach(c) {
                    per_neighbor[i].push((
                        self.dims.index(c) as u64,
                        self.ants[li],
                        self.pheromone[li],
                        self.food[li],
                    ));
                }
            }
        }
        for (i, cells) in per_neighbor.into_iter().enumerate() {
            out.send(self.neighbors[i].0, Msg::Halo(cells));
        }
        delivered_now
    }

    fn counts(&self) -> (u64, u64, f64) {
        let mut searching = 0;
        let mut carrying = 0;
        let mut food = 0.0;
        for c in self.hb.core.iter_coords() {
            let li = self.hb.local(c);
            match self.ants[li] {
                1 => searching += 1,
                2 => carrying += 1,
                _ => {}
            }
            food += self.food[li] as f64;
        }
        (searching, carrying, food)
    }
}

fn main() {
    let dims = GridDims::new2d(GRID, GRID);
    let partition = Partition::new(dims, RANKS, Strategy::Blocks);
    let nest = Coord::new(GRID as i64 / 2, GRID as i64 / 2, 0);
    let piles: Vec<Coord> = (0..N_FOOD_PILES as u64)
        .map(|i| {
            let mut rng = CounterRng::new(SEED, Stream::FoiPlacement, 0, i);
            Coord::new(
                8 + rng.below(GRID as u64 - 16) as i64,
                8 + rng.below(GRID as u64 - 16) as i64,
                0,
            )
        })
        .collect();

    let pool = WorkPool::host_sized();
    let mut bsp: Bsp<Msg> = Bsp::new(RANKS);
    let mut ranks: Vec<ForagerRank> = (0..RANKS)
        .map(|r| ForagerRank::new(r, &partition, nest, &piles))
        .collect();

    println!(
        "forager ABM on the SIMCoV-GPU substrates: {GRID}x{GRID}, {RANKS} ranks, {} food piles\n",
        piles.len()
    );
    for t in 0..STEPS {
        bsp.superstep(&pool, &mut ranks, |_r, s, inbox, out| s.plan(t, inbox, out));
        let delivered: u64 = bsp
            .superstep(&pool, &mut ranks, |_r, s, inbox, out| {
                s.update(t, inbox, out)
            })
            .iter()
            .sum();
        let _ = delivered;
        if t % 80 == 0 || t == STEPS - 1 {
            let (searching, carrying, food) = ranks.iter().fold((0, 0, 0.0), |acc, r| {
                let (s, c, f) = r.counts();
                (acc.0 + s, acc.1 + c, acc.2 + f)
            });
            let total_delivered: u64 = ranks.iter().map(|r| r.delivered).sum();
            println!(
                "step {t:>4}: {searching:>3} searching, {carrying:>3} carrying, \
                 {food:>6.0} food left, {total_delivered:>4} delivered"
            );
        }
    }
    let total_delivered: u64 = ranks.iter().map(|r| r.delivered).sum();
    let total_ants: u64 = ranks
        .iter()
        .map(|r| {
            let (s, c, _) = r.counts();
            s + c
        })
        .sum();
    println!("\nants conserved: {total_ants} (started 25); food delivered: {total_delivered}");
    assert_eq!(total_ants, 25, "bid-based movement must conserve agents");
    assert!(total_delivered > 0, "foragers should deliver food");
    println!(
        "Same substrates, different ABM: BSP supersteps, halo boxes, §3.1 bid tiebreaks,\n\
         diffusing fields and counter-RNG — the §6 road map for porting ABMs to exascale."
    );
}
