//! Initializing a simulation from CT-scan-like patchy lesions (paper §6):
//! "CT scans of diseased patients do not contain point-like initial
//! infection locations, but instead feature large patchy lesions" — this is
//! the motivating use case for high-FOI performance (Fig. 8).
//!
//! Compares the disease trajectory and the executor work between point
//! seeding and lesion seeding with the same total number of seeded voxels.
//!
//! ```sh
//! cargo run --release --example ct_scan_lesions
//! ```

use simcov_repro::simcov_core::foi::{foi_voxels, FoiPattern};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::stats::Metric;
use simcov_repro::simcov_core::world::World;
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn run(pattern: FoiPattern, label: &str, params: &SimParams) {
    let world = World::seeded(params, pattern);
    let seeded = world.virions.count_positive();
    let cfg = GpuSimConfig::new(params.clone(), 4).with_pattern(pattern);
    let mut sim = GpuSim::from_world(cfg, world).expect("valid config");
    sim.run().expect("healthy run");
    let last = sim.last_stats().unwrap();
    let work = sim.total_counters();
    println!(
        "{label:<22} seeded voxels {seeded:>5} | peak virions {:>12.3e} | dead {:>6} | \
         peak T cells {:>5} | update work {:>12}",
        sim.history().peak(Metric::Virions),
        last.epi_dead,
        sim.history().peak(Metric::TCellsTissue) as u64,
        work.update.elements,
    );
}

fn main() {
    let dims = GridDims::new2d(192, 192);
    let steps = 600;

    // Point seeding: 96 isolated foci.
    let point = SimParams::scaled_to(dims, steps, 96, 11);
    point.validate().unwrap();

    // CT-lesion seeding: 8 patchy lesions of radius 2 (about the same
    // number of seeded voxels, distributed as clumps).
    let lesions = FoiPattern::CtLesions {
        clusters: 8,
        radius: 2,
    };
    let lesion_voxels = foi_voxels(&point, lesions).len();
    println!(
        "CT-lesion initialization demo on {}x{} ({} steps); lesion pattern seeds {} voxels\n",
        dims.x, dims.y, steps, lesion_voxels
    );

    run(FoiPattern::UniformLattice, "96 point foci", &point);
    run(lesions, "8 patchy lesions", &point);

    println!(
        "\nPatchy lesions concentrate early activity (fewer, larger active regions), while\n\
         point foci spread it; SIMCoV-GPU's active-tile tracking adapts to both (§3.2),\n\
         and its FOI-scaling advantage (Fig 8) is what makes CT-scale seeding tractable."
    );
}
