#!/usr/bin/env bash
# Full local verification gate: formatting, lints, build, tests, and a smoke
# run of the reproduction suite producing a JSON artifact. Run from the
# repository root. Everything is offline; no network access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --workspace

echo "== docs (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== tests =="
cargo test -q --workspace

# Smoke artifact goes to target/ so it never clobbers the committed
# scale-64 baseline BENCH_results.json (regenerate that with
# `SIMCOV_SCALE=64 SIMCOV_TRIALS=3 cargo run --release -p simcov-bench
# --bin repro_all -- --json BENCH_results.json`).
echo "== bench smoke (scaled-down repro, JSON artifact) =="
SIMCOV_SCALE="${SIMCOV_SCALE:-256}" SIMCOV_TRIALS="${SIMCOV_TRIALS:-2}" \
    cargo run --release -p simcov-bench --bin repro_all -- --json target/BENCH_smoke.json \
    --metrics-out target/BENCH_smoke.prom >/dev/null

python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_smoke.json"))
for key in ("suite", "scale", "table1", "fig4", "fig5_and_table2", "fig6", "fig7", "fig8"):
    assert key in doc, f"BENCH_smoke.json missing key: {key}"
lines = [l for l in open("target/BENCH_smoke.prom")
         if l.strip() and not l.startswith("#")]
assert any(l.startswith("repro_section_wall_seconds") for l in lines), \
    "repro_all metrics exposition missing section gauges"
print("BENCH_smoke.json OK:", ", ".join(sorted(doc)))
EOF

# The fault sweep asserts in-process that every recovered run is bitwise
# identical to its failure-free baseline; the JSON check covers the artifact.
echo "== fault sweep smoke (recovery + JSON artifact) =="
cargo run --release -p simcov-bench --bin fault_sweep -- \
    --json target/BENCH_fault_sweep.json >/dev/null

python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_fault_sweep.json"))
assert doc.get("suite") == "fault_sweep", "wrong suite tag"
rows = doc["rows"]
assert rows, "fault sweep produced no rows"
for r in rows:
    assert r["identical_to_failure_free"], f"recovery diverged: {r}"
    assert r["checkpoint_delta_bytes"] <= r["checkpoint_full_bytes"], f"delta > dense: {r}"
assert any(r["recoveries"] > 0 for r in rows), "no cell exercised recovery"
print(f"BENCH_fault_sweep.json OK: {len(rows)} cells, all bitwise-identical")
EOF

# The SDC sweep asserts in-process that every healed run is bitwise
# identical to its corruption-free baseline (statistics and per-voxel
# state) and that corruption-free cells stay silent at every audit period;
# the JSON check covers the artifact.
echo "== SDC sweep smoke (corruption healing + JSON artifact) =="
cargo run --release -p simcov-bench --bin sdc_sweep -- --smoke \
    --json target/BENCH_sdc_sweep.json >/dev/null

python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_sdc_sweep.json"))
assert doc.get("suite") == "sdc_sweep", "wrong suite tag"
rows = doc["rows"]
assert rows, "sdc sweep produced no rows"
for r in rows:
    assert r["identical_to_corruption_free"], f"healing diverged: {r}"
    if r["corruption_rate"] == 0:
        clean = (r["payload_heals"], r["state_detections"],
                 r["checkpoint_quarantines"], r["retransmits"], r["rollbacks"])
        assert clean == (0, 0, 0, 0, 0), f"false positive on a clean run: {r}"
assert any(r["retransmits"] > 0 for r in rows), "no cell exercised in-barrier healing"
assert any(r["rollbacks"] > 0 for r in rows), "no cell exercised the rollback tier"
print(f"BENCH_sdc_sweep.json OK: {len(rows)} cells, all healed bitwise-identical, "
      f"zero false positives")
EOF

# Crash-restart smoke: a run killed mid-flight (simulated SIGKILL after
# step 25, exit code 3, no final persist) must resume from its durable
# checkpoint and reproduce the uninterrupted run's CSV byte-for-byte.
# Both distributed executors are exercised — the resume lands at step 20,
# off the GPU tile-activity check schedule, so a resumed device must
# rebuild its active set rather than coast until the next periodic check.
echo "== crash-restart smoke (durable checkpoint + --resume) =="
cat > target/verify_sdc.config <<'CFG'
; crash-restart smoke configuration
dim = 32 32 1
timesteps = 40
num-infections = 4
CFG
for exec in cpu gpu; do
    cargo run --release -q -p simcov-bench --bin simcov -- target/verify_sdc.config \
        --executor "$exec" --units 4 --out-csv target/verify_uninterrupted.csv 2>/dev/null >/dev/null
    set +e
    cargo run --release -q -p simcov-bench --bin simcov -- target/verify_sdc.config \
        --executor "$exec" --units 4 --persist target/verify_run.ck --persist-every 10 \
        --halt-after 25 2>/dev/null >/dev/null
    halt=$?
    set -e
    if [ "$halt" -ne 3 ]; then
        echo "expected simulated-crash exit code 3, got $halt ($exec)"
        exit 1
    fi
    cargo run --release -q -p simcov-bench --bin simcov -- target/verify_sdc.config \
        --executor "$exec" --units 4 --resume target/verify_run.ck \
        --out-csv target/verify_resumed.csv 2>/dev/null >/dev/null
    if ! cmp -s target/verify_uninterrupted.csv target/verify_resumed.csv; then
        echo "resumed $exec run diverged from the uninterrupted run"
        exit 1
    fi
    echo "crash-restart OK ($exec): resumed CSV identical to the uninterrupted run"
done

# Process-transport smoke: the socket transport (one worker process per
# rank, CRC64-sealed frames, read/write deadlines) must be invisible in the
# results — the 4-rank socket run is byte-identical to the in-process run
# on both executors — and a worker SIGKILLed at a barrier must recover
# through the rollback/re-partition ladder to the same bytes. Every run is
# wrapped in a hard timeout so a wedged worker can never hang the gate.
echo "== process transport smoke (socket ranks + kill-and-recover) =="
for exec in cpu gpu; do
    timeout 180 cargo run --release -q -p simcov-bench --bin simcov -- target/verify_sdc.config \
        --executor "$exec" --units 4 \
        --out-csv "target/verify_pt_${exec}_inproc.csv" 2>/dev/null >/dev/null
    timeout 180 cargo run --release -q -p simcov-bench --bin simcov -- target/verify_sdc.config \
        --executor "$exec" --units 4 --transport process \
        --out-csv "target/verify_pt_${exec}_socket.csv" 2>/dev/null >/dev/null
    if ! cmp -s "target/verify_pt_${exec}_inproc.csv" "target/verify_pt_${exec}_socket.csv"; then
        echo "process-transport $exec run diverged from the in-process run"
        exit 1
    fi
    echo "process transport OK ($exec): socket CSV identical to in-process"
done
timeout 180 cargo run --release -q -p simcov-bench --bin simcov -- target/verify_sdc.config \
    --executor cpu --units 4 --transport process --wire-kill 30:1 \
    --out-csv target/verify_pt_killed.csv 2>/dev/null >/dev/null
if ! cmp -s target/verify_pt_cpu_inproc.csv target/verify_pt_killed.csv; then
    echo "kill-and-recover run diverged from the failure-free run"
    exit 1
fi
echo "process transport OK (kill-and-recover): recovered CSV identical to failure-free"

# Telemetry smoke: both exporters on a 32x32 run, per executor. The Chrome
# trace must parse and nest (>= 4 span levels on the GPU executor: step ->
# superstep -> rank-phase -> kernel; >= 3 on the CPU executor, which has no
# device-kernel layer), the Prometheus exposition must be line-parseable,
# and — the determinism invariant — the telemetry-on CSV must be
# byte-identical to the telemetry-off CSV.
echo "== telemetry smoke (trace/metrics exporters + zero-perturbation) =="
cat > target/verify_tel.config <<'CFG'
; telemetry smoke configuration
dim = 32 32 1
timesteps = 20
num-infections = 4
CFG
for exec in cpu gpu; do
    cargo run --release -q -p simcov-bench --bin simcov -- target/verify_tel.config \
        --executor "$exec" --units 4 --out-csv target/verify_tel_off.csv \
        2>/dev/null >/dev/null
    cargo run --release -q -p simcov-bench --bin simcov -- target/verify_tel.config \
        --executor "$exec" --units 4 --out-csv target/verify_tel_on.csv \
        --trace-out target/verify_tel_trace.json \
        --metrics-out target/verify_tel_metrics.prom 2>/dev/null >/dev/null
    if ! cmp -s target/verify_tel_off.csv target/verify_tel_on.csv; then
        echo "telemetry perturbed the $exec run (CSVs differ)"
        exit 1
    fi
    python3 - "$exec" <<'EOF'
import json, sys
exec_name = sys.argv[1]
doc = json.load(open("target/verify_tel_trace.json"))
events = doc["traceEvents"]
assert events, "empty trace"
spans = {e["args"]["id"]: e["args"] for e in events if e.get("ph") == "X"}
assert spans, "trace has no complete spans"
depth = 0
for a in spans.values():
    d, cur = 1, a
    while cur["parent"] in spans:
        cur = spans[cur["parent"]]
        d += 1
    depth = max(depth, d)
need = 4 if exec_name == "gpu" else 3
assert depth >= need, f"span nesting {depth} < {need} levels ({exec_name})"
assert doc["otherData"]["dropped_events"] == 0, "ring dropped events"
lines = [l.strip() for l in open("target/verify_tel_metrics.prom")
         if l.strip() and not l.startswith("#")]
assert lines, "empty prometheus exposition"
for l in lines:
    name = l.split("{")[0].split(" ")[0]
    assert name and name.replace("_", "").isalnum(), f"bad metric name: {l!r}"
    float(l.rsplit(" ", 1)[1])  # every sample line ends in a number
assert any(l.startswith("simcov_step_wall_ns") for l in lines), \
    "step-wall histogram missing"
print(f"telemetry OK ({exec_name}): {len(spans)} spans, depth {depth}, "
      f"{len(lines)} metric samples, CSV byte-identical")
EOF
done

# Control-plane replay gate: seeded fault cascades on both executors with
# event recording on; the recorded log must fold through the pure core to
# the exact live control state and record streams (zero filesystem or
# executor access during the replay). The cascade property suite drives
# the same core through hundreds of seeded event sequences.
echo "== control-plane replay gate (pure-core determinism) =="
cargo run --release -q -p simcov-bench --bin replay_check -- --steps 40 --grid 24
cargo test -q --test driver_state 2>/dev/null | tail -2

# The perf gate fails (exit 1) if any hot kernel's best time regresses more
# than 25% past the committed BENCH_baseline.json, if the wide-lane
# diffusion kernel drops below 1.8x over the naive sweep, if the coalesced
# halo exchange drops below 2.0x over per-message delivery, or if the
# telemetry-on e2e run costs more than 15% over the identical telemetry-off
# run (interleaved-pair min/min ratio). --threads 2 pins the parallel-rank
# e2e kernel's worker count so the gate's numbers are reproducible. Refresh
# the baseline (on a quiet machine, full sampling) with `cargo run --release
# -p simcov-bench --bin perf_gate -- --update-baseline`.
echo "== perf gate (hot-kernel regression + telemetry overhead budget) =="
cargo run --release -p simcov-bench --bin perf_gate -- \
    --smoke --tolerance "${SIMCOV_PERF_TOL:-0.25}" --threads 2 \
    --json target/BENCH_perf_smoke.json \
    --metrics-out target/BENCH_perf_smoke.prom >/dev/null

python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_perf_smoke.json"))
assert doc.get("suite") == "perf_gate", "wrong suite tag"
assert doc["kernels"], "perf gate produced no kernel timings"
names = {k["name"] for k in doc["kernels"]}
assert "diffusion/wide_64sq" in names, "wide-lane kernel missing from run"
assert "e2e/cpu_4ranks_threaded" in names, "parallel-rank kernel missing from run"
sp = doc["speedups"]
assert sp["diffusion_wide"] >= 1.8, f"wide diffusion below 1.8x: {sp}"
assert sp["halo_exchange"] >= 2.0, f"coalesced halo below 2.0x: {sp}"
overhead = sp["telemetry_overhead"]
assert 0.0 < overhead <= 1.15, f"telemetry overhead {overhead:.3f}x over budget"
lines = [l for l in open("target/BENCH_perf_smoke.prom")
         if l.strip() and not l.startswith("#")]
assert any(l.startswith("perf_gate_min_ns") for l in lines), \
    "perf gate metrics exposition missing kernel gauges"
print(f"BENCH_perf_smoke.json OK: {len(doc['kernels'])} kernels, "
      f"wide diffusion {sp['diffusion_wide']:.2f}x, halo {sp['halo_exchange']:.2f}x, "
      f"telemetry overhead {overhead:.3f}x")
EOF

# SIMD-differential and concurrent-rank suites under a --test-threads
# matrix: the harness's own parallelism must not perturb the bitwise
# checks (the suites spawn their own WorkPool workers; running them from 1
# and from 4 harness threads shakes out any hidden global state).
echo "== simd/parallel-rank differential matrix (test-threads 1 and 4) =="
for tt in 1 4; do
    echo "-- test-threads $tt --"
    cargo test -q --release --test simd_differential -- --test-threads "$tt" \
        | grep "^test result"
    cargo test -q --release --test parallel_ranks -- --test-threads "$tt" \
        | grep "^test result"
done

# Sweep-server gate: a small RunSpec sweep through the job server's full
# lifecycle — submit, kill mid-run (simulated crash, exit 3), resume, and
# assert (a) every resumed CSV is byte-identical to an uninterrupted
# reference run and (b) the seeded fail-stop job exhausted its recovery
# ladder into a populated, replayable DLQ entry.
echo "== sweep server gate (kill/resume identity + dead-letter queue) =="
cat > target/verify_sweep_jobs.json <<'JOBS'
{"jobs": [
  {"name": "cell_a", "run": {"executor": "cpu", "units": 3,
    "dims": [24, 24], "steps": 30, "num_foi": 2, "seed": 11}},
  {"name": "cell_b", "run": {"executor": "gpu", "units": 2,
    "dims": [24, 24], "steps": 30, "num_foi": 2, "seed": 12}},
  {"name": "doomed", "run": {"executor": "cpu", "units": 3,
    "dims": [24, 24], "steps": 30, "num_foi": 2, "seed": 13,
    "fault": {"seed": 57005, "death": 1.0},
    "recovery": {"checkpoint_period": 4, "max_retries": 1,
                 "backoff_base_ns": 1000}}}
]}
JOBS
rm -rf target/sweep/verify target/sweep/verify_ref
cargo run --release -q -p simcov-bench --bin sweep_server -- \
    --jobs target/verify_sweep_jobs.json --out-dir target/sweep/verify_ref \
    --persist-every 7 >/dev/null
set +e
cargo run --release -q -p simcov-bench --bin sweep_server -- \
    --jobs target/verify_sweep_jobs.json --out-dir target/sweep/verify \
    --persist-every 7 --halt-after 13 >/dev/null
halt=$?
set -e
if [ "$halt" -ne 3 ]; then
    echo "expected simulated-crash exit code 3, got $halt"
    exit 1
fi
cargo run --release -q -p simcov-bench --bin sweep_server -- \
    --jobs target/verify_sweep_jobs.json --out-dir target/sweep/verify \
    --persist-every 7 --json target/BENCH_sweep_gate.json >/dev/null
for cell in cell_a cell_b; do
    if ! cmp -s "target/sweep/verify_ref/$cell.csv" "target/sweep/verify/$cell.csv"; then
        echo "resumed sweep job $cell diverged from the uninterrupted run"
        exit 1
    fi
done
python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_sweep_gate.json"))
assert doc.get("suite") == "sweep_server", "wrong suite tag"
assert doc["completed"] == 2, f"expected 2 completed jobs: {doc}"
assert doc["dead"] == 1, f"expected 1 dead-lettered job: {doc}"
assert doc["interrupted"] == 0, f"resume left interrupted jobs: {doc}"
dlq = json.load(open("target/sweep/verify/dlq/doomed.json"))
assert dlq["record"] == "dead_letter" and dlq["job"] == "doomed"
assert dlq["events"] > 0, "DLQ entry recorded no control-plane events"
assert dlq["error"] and dlq["replay_halt"], f"DLQ entry not replayable: {dlq}"
ref = open("target/sweep/verify_ref/cell_a.jsonl").read().splitlines()
assert '"record":"job"' in ref[0], "missing job header line"
assert sum('"record":"step"' in l for l in ref) == 30, "missing streamed step records"
# The interrupted stream appends the resumed run: a second header plus the
# steps recomputed from the restored checkpoint, ending at the final step.
resumed = open("target/sweep/verify/cell_a.jsonl").read().splitlines()
assert sum('"record":"job"' in l for l in resumed) == 2, "resume must append a header"
steps = [l for l in resumed if '"record":"step"' in l]
assert len(steps) > 30 and '"step":29,' in steps[-1], "resumed stream incomplete"
print(f"sweep gate OK: resumed CSVs identical, DLQ entry replayable "
      f"(halt={dlq['replay_halt']!r}, {dlq['events']} events)")
EOF

echo "== all checks passed =="
