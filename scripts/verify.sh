#!/usr/bin/env bash
# Full local verification gate: formatting, lints, build, tests, and a smoke
# run of the reproduction suite producing a JSON artifact. Run from the
# repository root. Everything is offline; no network access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --workspace

echo "== docs (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== tests =="
cargo test -q --workspace

# Smoke artifact goes to target/ so it never clobbers the committed
# scale-64 baseline BENCH_results.json (regenerate that with
# `SIMCOV_SCALE=64 SIMCOV_TRIALS=3 cargo run --release -p simcov-bench
# --bin repro_all -- --json BENCH_results.json`).
echo "== bench smoke (scaled-down repro, JSON artifact) =="
SIMCOV_SCALE="${SIMCOV_SCALE:-256}" SIMCOV_TRIALS="${SIMCOV_TRIALS:-2}" \
    cargo run --release -p simcov-bench --bin repro_all -- --json target/BENCH_smoke.json >/dev/null

python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_smoke.json"))
for key in ("suite", "scale", "table1", "fig4", "fig5_and_table2", "fig6", "fig7", "fig8"):
    assert key in doc, f"BENCH_smoke.json missing key: {key}"
print("BENCH_smoke.json OK:", ", ".join(sorted(doc)))
EOF

# The fault sweep asserts in-process that every recovered run is bitwise
# identical to its failure-free baseline; the JSON check covers the artifact.
echo "== fault sweep smoke (recovery + JSON artifact) =="
cargo run --release -p simcov-bench --bin fault_sweep -- \
    --json target/BENCH_fault_sweep.json >/dev/null

python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_fault_sweep.json"))
assert doc.get("suite") == "fault_sweep", "wrong suite tag"
rows = doc["rows"]
assert rows, "fault sweep produced no rows"
for r in rows:
    assert r["identical_to_failure_free"], f"recovery diverged: {r}"
    assert r["checkpoint_delta_bytes"] <= r["checkpoint_full_bytes"], f"delta > dense: {r}"
assert any(r["recoveries"] > 0 for r in rows), "no cell exercised recovery"
print(f"BENCH_fault_sweep.json OK: {len(rows)} cells, all bitwise-identical")
EOF

# The perf gate fails (exit 1) if any hot kernel's best time regresses more
# than 25% past the committed BENCH_baseline.json, or if neither the
# diffusion stencil nor the coalesced halo exchange holds a >= 1.5x speedup
# over its naive form. Refresh the baseline (on a quiet machine, full
# sampling) with `cargo run --release -p simcov-bench --bin perf_gate --
# --update-baseline`.
echo "== perf gate (hot-kernel regression check vs BENCH_baseline.json) =="
cargo run --release -p simcov-bench --bin perf_gate -- \
    --smoke --tolerance "${SIMCOV_PERF_TOL:-0.25}" \
    --json target/BENCH_perf_smoke.json >/dev/null

python3 - <<'EOF'
import json
doc = json.load(open("target/BENCH_perf_smoke.json"))
assert doc.get("suite") == "perf_gate", "wrong suite tag"
assert doc["kernels"], "perf gate produced no kernel timings"
best = max(doc["speedups"].values())
assert best >= 1.5, f"no hot kernel at 1.5x: {doc['speedups']}"
print(f"BENCH_perf_smoke.json OK: {len(doc['kernels'])} kernels, "
      f"best speedup {best:.2f}x")
EOF

echo "== all checks passed =="
