//! Umbrella crate for the SIMCoV-GPU reproduction.
//!
//! Re-exports the component crates so examples and integration tests can use
//! a single dependency. See `DESIGN.md` at the repository root for the system
//! inventory and the per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use gpusim;
pub use pgas;
pub use simcov_core;
pub use simcov_cpu;
pub use simcov_driver;
pub use simcov_gpu;
pub use simcov_sweep;
pub use simcov_telemetry;
