//! Property-style tests over randomized configurations: model invariants
//! that must hold for *every* parameter draw, plus cross-executor equality
//! as a property. Randomness comes from the workspace's own deterministic
//! [`CounterRng`] (no external property-testing dependency), so every case
//! is reproducible from its printed case index.

use simcov_repro::simcov_core::epithelial::EpiState;
use simcov_repro::simcov_core::foi::FoiPattern;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::rng::{CounterRng, Stream};
use simcov_repro::simcov_core::serial::SerialSim;
use simcov_repro::simcov_core::world::World;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

const CASES: u64 = 12;

/// Deterministic per-case draw helper over `[lo, hi)`.
struct Draw(CounterRng);

impl Draw {
    fn new(suite: u64, case: u64) -> Self {
        Draw(CounterRng::new(
            0x1b5a_11a7 ^ suite,
            Stream::FoiPlacement,
            case,
            0,
        ))
    }
    fn int(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.0.below(hi - lo)
    }
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.0.next_f64() * (hi - lo)
    }
    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.f64(lo as f64, hi as f64) as f32
    }
}

/// A randomized small-but-meaningful configuration (the counterpart of the
/// old proptest `arb_params` strategy).
fn arb_params(d: &mut Draw) -> SimParams {
    let x = d.int(12, 28) as u32;
    let y = d.int(12, 28) as u32;
    let steps = d.int(30, 90);
    let foi = d.int(0, 5) as u32;
    let seed = d.0.next_u64();
    let mut p = SimParams::test_config(GridDims::new2d(x, y), steps, foi, seed);
    p.infectivity = d.f64(0.0, 0.01);
    p.virion_diffusion = d.f32(0.0, 0.5);
    p.virion_clearance = d.f32(0.0, 0.05);
    p
}

#[test]
fn serial_invariants_hold() {
    for case in 0..CASES {
        let p = arb_params(&mut Draw::new(1, case));
        let mut sim = SerialSim::new(p.clone());
        let nvox = p.dims.nvoxels() as u64;
        let n_airway = sim.world.count_epi(EpiState::Airway);
        for _ in 0..p.steps {
            sim.advance_step();
            let s = *sim.last_stats().unwrap();
            // Epithelial conservation: states partition the tissue.
            assert_eq!(
                s.epi_healthy
                    + s.epi_incubating
                    + s.epi_expressing
                    + s.epi_apoptotic
                    + s.epi_dead
                    + n_airway,
                nvox,
                "case {case}"
            );
            // Concentration bounds.
            assert!(s.virions >= 0.0, "case {case}");
            assert!(s.chemokine >= 0.0, "case {case}");
            assert!(
                s.chemokine <= nvox as f64,
                "case {case}: chemokine capped at 1/voxel"
            );
            // Tissue T cells can never exceed voxels (one per voxel).
            assert!(s.tcells_tissue <= nvox, "case {case}");
            // Per-voxel invariants.
            for v in 0..p.dims.nvoxels() {
                let c = sim.world.chemokine.get(v);
                assert!((0.0..=1.0).contains(&c), "case {case}");
                assert!(sim.world.virions.get(v) >= 0.0, "case {case}");
                assert!(
                    !sim.world.tcells[v].is_fresh(),
                    "case {case}: fresh cleared at step end"
                );
            }
        }
    }
}

#[test]
fn executors_agree_on_random_configs() {
    for case in 0..CASES {
        let mut d = Draw::new(2, case);
        let p = arb_params(&mut d);
        let ranks = d.int(2, 6) as usize;
        let devices = d.int(2, 6) as usize;
        let world = World::seeded(&p, FoiPattern::UniformLattice);
        let mut serial = SerialSim::from_world(p.clone(), world.clone());
        serial.run();
        let mut cpu = CpuSim::from_world(CpuSimConfig::new(p.clone(), ranks), world.clone())
            .expect("valid config");
        cpu.run().expect("healthy run");
        let mut gpu = GpuSim::from_world(
            GpuSimConfig::new(p, devices).with_variant(GpuVariant::Combined),
            world,
        )
        .expect("valid config");
        gpu.run().expect("healthy run");
        assert!(
            serial.world.first_difference(&cpu.gather_world()).is_none(),
            "case {case}: cpu diverged ({ranks} ranks)"
        );
        assert!(
            serial.world.first_difference(&gpu.gather_world()).is_none(),
            "case {case}: gpu diverged ({devices} devices)"
        );
    }
}

#[test]
fn dead_cells_never_resurrect() {
    for case in 0..CASES {
        let p = arb_params(&mut Draw::new(3, case));
        let mut sim = SerialSim::new(p.clone());
        let mut dead_prev = 0u64;
        for _ in 0..p.steps {
            sim.advance_step();
            let dead = sim.last_stats().unwrap().epi_dead;
            assert!(
                dead >= dead_prev,
                "case {case}: dead count must be monotone"
            );
            dead_prev = dead;
        }
    }
}

#[test]
fn quiescent_stays_quiescent() {
    for case in 0..CASES {
        let mut d = Draw::new(4, case);
        let x = d.int(12, 24) as u32;
        let y = d.int(12, 24) as u32;
        let steps = d.int(20, 60);
        let seed = d.0.next_u64();
        // No FOI + no T-cell generation ⇒ nothing ever happens, and the
        // active-list executors must do (almost) no work.
        let mut p = SimParams::test_config(GridDims::new2d(x, y), steps, 0, seed);
        p.tcell_generation_rate = 0.0;
        let mut cpu = CpuSim::new(CpuSimConfig::new(p.clone(), 4)).expect("valid config");
        cpu.run().expect("healthy run");
        let s = cpu.last_stats().unwrap();
        assert_eq!(s.epi_healthy, p.dims.nvoxels() as u64, "case {case}");
        assert_eq!(s.virions, 0.0, "case {case}");
        assert_eq!(
            cpu.total_counters().update.elements,
            0,
            "case {case}: no active voxels, no work"
        );
    }
}
