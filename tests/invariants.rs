//! Property-style tests over randomized configurations: model invariants
//! that must hold for *every* parameter draw, plus cross-executor equality
//! as a property. Randomness comes from the workspace's own deterministic
//! [`CounterRng`] (no external property-testing dependency), so every case
//! is reproducible from its printed case index.

use simcov_repro::simcov_core::epithelial::EpiState;
use simcov_repro::simcov_core::exact::ExactSum;
use simcov_repro::simcov_core::foi::FoiPattern;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::rng::{CounterRng, Stream};
use simcov_repro::simcov_core::serial::SerialSim;
use simcov_repro::simcov_core::world::World;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

const CASES: u64 = 12;

/// Deterministic per-case draw helper over `[lo, hi)`.
struct Draw(CounterRng);

impl Draw {
    fn new(suite: u64, case: u64) -> Self {
        Draw(CounterRng::new(
            0x1b5a_11a7 ^ suite,
            Stream::FoiPlacement,
            case,
            0,
        ))
    }
    fn int(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.0.below(hi - lo)
    }
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.0.next_f64() * (hi - lo)
    }
    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.f64(lo as f64, hi as f64) as f32
    }
}

/// A randomized small-but-meaningful configuration (the counterpart of the
/// old proptest `arb_params` strategy).
fn arb_params(d: &mut Draw) -> SimParams {
    let x = d.int(12, 28) as u32;
    let y = d.int(12, 28) as u32;
    let steps = d.int(30, 90);
    let foi = d.int(0, 5) as u32;
    let seed = d.0.next_u64();
    let mut p = SimParams::test_config(GridDims::new2d(x, y), steps, foi, seed);
    p.infectivity = d.f64(0.0, 0.01);
    p.virion_diffusion = d.f32(0.0, 0.5);
    p.virion_clearance = d.f32(0.0, 0.05);
    p
}

#[test]
fn serial_invariants_hold() {
    for case in 0..CASES {
        let p = arb_params(&mut Draw::new(1, case));
        let mut sim = SerialSim::new(p.clone());
        let nvox = p.dims.nvoxels() as u64;
        let n_airway = sim.world.count_epi(EpiState::Airway);
        for _ in 0..p.steps {
            sim.advance_step();
            let s = *sim.last_stats().unwrap();
            // Epithelial conservation: states partition the tissue.
            assert_eq!(
                s.epi_healthy
                    + s.epi_incubating
                    + s.epi_expressing
                    + s.epi_apoptotic
                    + s.epi_dead
                    + n_airway,
                nvox,
                "case {case}"
            );
            // Concentration bounds.
            assert!(s.virions >= 0.0, "case {case}");
            assert!(s.chemokine >= 0.0, "case {case}");
            assert!(
                s.chemokine <= nvox as f64,
                "case {case}: chemokine capped at 1/voxel"
            );
            // Tissue T cells can never exceed voxels (one per voxel).
            assert!(s.tcells_tissue <= nvox, "case {case}");
            // Per-voxel invariants.
            for v in 0..p.dims.nvoxels() {
                let c = sim.world.chemokine.get(v);
                assert!((0.0..=1.0).contains(&c), "case {case}");
                assert!(sim.world.virions.get(v) >= 0.0, "case {case}");
                assert!(
                    !sim.world.tcells[v].is_fresh(),
                    "case {case}: fresh cleared at step end"
                );
            }
        }
    }
}

#[test]
fn executors_agree_on_random_configs() {
    for case in 0..CASES {
        let mut d = Draw::new(2, case);
        let p = arb_params(&mut d);
        let ranks = d.int(2, 6) as usize;
        let devices = d.int(2, 6) as usize;
        let world = World::seeded(&p, FoiPattern::UniformLattice);
        let mut serial = SerialSim::from_world(p.clone(), world.clone());
        serial.run();
        let mut cpu = CpuSim::from_world(CpuSimConfig::new(p.clone(), ranks), world.clone())
            .expect("valid config");
        cpu.run().expect("healthy run");
        let mut gpu = GpuSim::from_world(
            GpuSimConfig::new(p, devices).with_variant(GpuVariant::Combined),
            world,
        )
        .expect("valid config");
        gpu.run().expect("healthy run");
        assert!(
            serial.world.first_difference(&cpu.gather_world()).is_none(),
            "case {case}: cpu diverged ({ranks} ranks)"
        );
        assert!(
            serial.world.first_difference(&gpu.gather_world()).is_none(),
            "case {case}: gpu diverged ({devices} devices)"
        );
    }
}

#[test]
fn dead_cells_never_resurrect() {
    for case in 0..CASES {
        let p = arb_params(&mut Draw::new(3, case));
        let mut sim = SerialSim::new(p.clone());
        let mut dead_prev = 0u64;
        for _ in 0..p.steps {
            sim.advance_step();
            let dead = sim.last_stats().unwrap().epi_dead;
            assert!(
                dead >= dead_prev,
                "case {case}: dead count must be monotone"
            );
            dead_prev = dead;
        }
    }
}

#[test]
fn quiescent_stays_quiescent() {
    for case in 0..CASES {
        let mut d = Draw::new(4, case);
        let x = d.int(12, 24) as u32;
        let y = d.int(12, 24) as u32;
        let steps = d.int(20, 60);
        let seed = d.0.next_u64();
        // No FOI + no T-cell generation ⇒ nothing ever happens, and the
        // active-list executors must do (almost) no work.
        let mut p = SimParams::test_config(GridDims::new2d(x, y), steps, 0, seed);
        p.tcell_generation_rate = 0.0;
        let mut cpu = CpuSim::new(CpuSimConfig::new(p.clone(), 4)).expect("valid config");
        cpu.run().expect("healthy run");
        let s = cpu.last_stats().unwrap();
        assert_eq!(s.epi_healthy, p.dims.nvoxels() as u64, "case {case}");
        assert_eq!(s.virions, 0.0, "case {case}");
        assert_eq!(
            cpu.total_counters().update.elements,
            0,
            "case {case}: no active voxels, no work"
        );
    }
}

// ---------------------------------------------------------------------------
// Exact-summation properties. The bitwise reproducibility of every executor
// rests on `core::exact::ExactSum` being a true monoid over f32 samples:
// order- and partition-independent, with `zero()` as the neutral element.
// These seeded property tests exercise it over adversarial cohorts — random
// exponents across the whole f32 range, subnormals, and huge/tiny mixtures
// where naive f32 (and even f64) accumulation loses the small addends.

/// A random non-negative finite f32 with a uniformly random bit pattern:
/// exponents spread over the full range, including subnormals.
fn arb_sample(rng: &mut CounterRng) -> f32 {
    let bits = (rng.next_u64() as u32) & 0x7FFF_FFFF;
    let v = f32::from_bits(bits);
    if v.is_finite() {
        v
    } else {
        // Demote the inf/NaN exponent to a subnormal with the same fraction.
        f32::from_bits(bits & 0x007F_FFFF)
    }
}

/// An adversarial cohort: random-bit samples plus a cancellation-heavy tail
/// of huge values interleaved with tiny and subnormal ones.
fn arb_cohort(d: &mut Draw, len: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..len).map(|_| arb_sample(&mut d.0)).collect();
    for k in 0..len / 4 {
        v.push(2.0e38 * (1.0 + (k % 3) as f32 * 0.1)); // ≤ 2.4e38, still finite
        v.push(f32::from_bits(1 + k as u32)); // smallest subnormals
        v.push(1.0e-38);
    }
    v
}

fn seeded_shuffle<T>(v: &mut [T], rng: &mut CounterRng) {
    for i in (1..v.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
}

fn exact_of(values: &[f32]) -> ExactSum {
    let mut s = ExactSum::zero();
    for &v in values {
        s.add_f32(v);
    }
    s
}

/// Any permutation of the cohort accumulates to the same exact value (same
/// limbs, same rounded f64 bits).
#[test]
fn exact_sum_is_permutation_invariant() {
    for case in 0..CASES {
        let mut d = Draw::new(10, case);
        let n = d.int(64, 512) as usize;
        let cohort = arb_cohort(&mut d, n);
        let reference = exact_of(&cohort);
        for round in 0..4u64 {
            let mut permuted = cohort.clone();
            seeded_shuffle(&mut permuted, &mut d.0);
            let s = exact_of(&permuted);
            assert_eq!(s, reference, "case {case} round {round}: limbs differ");
            assert_eq!(
                s.to_f64().to_bits(),
                reference.to_f64().to_bits(),
                "case {case} round {round}: rounded totals differ"
            );
        }
    }
}

/// `zero()` is neutral: merging it anywhere changes nothing, an empty sum
/// reports zero, and adding literal zeros leaves the accumulator untouched.
#[test]
fn exact_sum_zero_is_neutral() {
    assert!(ExactSum::zero().is_zero());
    assert_eq!(ExactSum::zero().to_f64(), 0.0);
    for case in 0..CASES {
        let mut d = Draw::new(11, case);
        let n = d.int(16, 128) as usize;
        let cohort = arb_cohort(&mut d, n);
        let reference = exact_of(&cohort);

        let mut left = ExactSum::zero();
        left += reference;
        let mut right = reference;
        right += ExactSum::zero();
        assert_eq!(left, reference, "case {case}: zero += s");
        assert_eq!(right, reference, "case {case}: s += zero");

        let mut with_zeros = ExactSum::zero();
        for (k, &v) in cohort.iter().enumerate() {
            if k % 3 == 0 {
                with_zeros.add_f32(0.0);
            }
            with_zeros.add_f32(v);
        }
        assert_eq!(with_zeros, reference, "case {case}: interleaved zeros");
    }
}

/// Merge is associative over random partitions: folding the same cohort's
/// blocks left-to-right, right-to-left, or as a balanced tree yields the
/// same exact value as straight accumulation.
#[test]
fn exact_sum_merge_is_associative_over_partitions() {
    for case in 0..CASES {
        let mut d = Draw::new(12, case);
        let n = d.int(96, 384) as usize;
        let cohort = arb_cohort(&mut d, n);
        let reference = exact_of(&cohort);

        // Random partition into 3..=9 contiguous blocks.
        let n_blocks = d.int(3, 10) as usize;
        let mut partials: Vec<ExactSum> = Vec::new();
        let mut start = 0usize;
        for b in 0..n_blocks {
            let end = if b == n_blocks - 1 {
                cohort.len()
            } else {
                let remaining = cohort.len() - start;
                start + d.int(0, remaining as u64 / 2 + 1) as usize
            };
            partials.push(exact_of(&cohort[start..end]));
            start = end;
        }

        let mut fold_left = ExactSum::zero();
        for &p in &partials {
            fold_left += p;
        }
        let mut fold_right = ExactSum::zero();
        for &p in partials.iter().rev() {
            fold_right += p;
        }
        let mut tree = partials.clone();
        while tree.len() > 1 {
            let mut next = Vec::new();
            for pair in tree.chunks(2) {
                let mut m = pair[0];
                if let Some(&b) = pair.get(1) {
                    m += b;
                }
                next.push(m);
            }
            tree = next;
        }

        assert_eq!(fold_left, reference, "case {case}: left fold");
        assert_eq!(fold_right, reference, "case {case}: right fold");
        assert_eq!(tree[0], reference, "case {case}: tree merge");
    }
}

/// Witness that the order-invariance property is not vacuous: on a classic
/// absorption cohort (one 2²⁴ plus 255 ones) a plain f32 running sum gives
/// different answers forward vs reversed, while the exact accumulator
/// agrees with itself — and with the true total — in both orders.
#[test]
fn exact_sum_beats_naive_f32_on_reordering() {
    let mut cohort = vec![16_777_216.0f32]; // 2^24: spacing 2, so +1.0 is lost
    cohort.resize(256, 1.0);
    let reversed: Vec<f32> = cohort.iter().rev().copied().collect();

    let naive_fwd: f32 = cohort.iter().sum();
    let naive_rev: f32 = reversed.iter().sum();
    assert_ne!(
        naive_fwd.to_bits(),
        naive_rev.to_bits(),
        "cohort too tame: naive f32 summation never noticed the reorder"
    );

    let exact_fwd = exact_of(&cohort);
    assert_eq!(exact_fwd, exact_of(&reversed), "exact sum reordered");
    assert_eq!(exact_fwd.to_f64(), 16_777_216.0 + 255.0);
}
