//! Stress tests for truly concurrent ranks.
//!
//! `CpuSimConfig::with_threads` / `GpuSimConfig::with_threads` pin the
//! executor's `WorkPool`, so rank (device) superstep bodies genuinely run on
//! worker threads instead of being multiplexed inline. Concurrency must be
//! invisible in the results: the coalesced mailbox exchange delivers
//! deterministically and `ExactSum` makes every reduction independent of
//! arrival order, so any thread count — including oversubscription past the
//! rank count — must yield **bitwise identical** trajectories. These tests
//! sweep thread counts, hammer repeatability, and inject rank deaths and
//! stalls *while ranks are running concurrently*.

use simcov_repro::pgas::{FaultEvent, FaultKind, FaultPlan};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::lanes::KernelMode;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn params(seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), 60, 8, seed)
}

/// Thread counts swept everywhere: inline dispatch, one worker, a few
/// workers, and more workers than ranks (oversubscribed).
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

#[test]
fn cpu_thread_sweep_is_bitwise_identical() {
    let mut reference =
        CpuSim::new(CpuSimConfig::new(params(21), 4).with_threads(0)).expect("valid config");
    reference.run().expect("healthy run");
    let ref_world = reference.gather_world();

    for threads in THREAD_SWEEP {
        let cfg = CpuSimConfig::new(params(21), 4).with_threads(threads);
        let mut sim = CpuSim::new(cfg).expect("valid config");
        sim.run().expect("healthy run");
        assert_eq!(
            reference.history(),
            sim.history(),
            "{threads} threads: time series diverged from inline dispatch"
        );
        if let Some((idx, why)) = ref_world.first_difference(&sim.gather_world()) {
            panic!("{threads} threads: world diverged at voxel {idx}: {why}");
        }
    }
}

#[test]
fn gpu_thread_sweep_is_bitwise_identical() {
    let mut reference =
        GpuSim::new(GpuSimConfig::new(params(22), 4).with_threads(0)).expect("valid config");
    reference.run().expect("healthy run");
    let ref_world = reference.gather_world();

    for threads in THREAD_SWEEP {
        let cfg = GpuSimConfig::new(params(22), 4).with_threads(threads);
        let mut sim = GpuSim::new(cfg).expect("valid config");
        sim.run().expect("healthy run");
        assert_eq!(
            reference.history(),
            sim.history(),
            "{threads} threads: time series diverged from inline dispatch"
        );
        if let Some((idx, why)) = ref_world.first_difference(&sim.gather_world()) {
            panic!("{threads} threads: world diverged at voxel {idx}: {why}");
        }
    }
}

#[test]
fn repeated_threaded_runs_are_identical() {
    // Same seeded config, same thread count, many runs: the scheduler is
    // free to interleave the workers differently every time, and none of it
    // may reach the results.
    let run = || {
        let cfg = CpuSimConfig::new(params(23), 4).with_threads(4);
        let mut sim = CpuSim::new(cfg).expect("valid config");
        sim.run().expect("healthy run");
        (sim.history().clone(), sim.gather_world())
    };
    let (hist0, world0) = run();
    for attempt in 1..4 {
        let (hist, world) = run();
        assert_eq!(hist0, hist, "attempt {attempt}: time series diverged");
        assert!(
            world0.first_difference(&world).is_none(),
            "attempt {attempt}: world diverged"
        );
    }
}

#[test]
fn kernel_mode_and_threads_are_jointly_invariant() {
    // The full cross product {scalar, wide} × {inline, threaded} lands on
    // one trajectory.
    let mut reference: Option<(_, _)> = None;
    for kernel in [KernelMode::Scalar, KernelMode::Wide] {
        for threads in [0usize, 3] {
            let cfg = CpuSimConfig::new(params(24), 4)
                .with_kernel(kernel)
                .with_threads(threads);
            let mut sim = CpuSim::new(cfg).expect("valid config");
            sim.run().expect("healthy run");
            let state = (sim.history().clone(), sim.gather_world());
            match &reference {
                None => reference = Some(state),
                Some((hist, world)) => {
                    assert_eq!(
                        hist,
                        &state.0,
                        "{} kernel / {threads} threads: time series diverged",
                        kernel.name()
                    );
                    assert!(
                        world.first_difference(&state.1).is_none(),
                        "{} kernel / {threads} threads: world diverged",
                        kernel.name()
                    );
                }
            }
        }
    }
}

#[test]
fn rank_death_recovery_while_ranks_run_concurrently() {
    // The failure-free oracle runs inline; the faulty run loses rank 1 at
    // step 30 (superstep 90: the CPU executor runs 3 supersteps per step)
    // with four ranks genuinely concurrent on four workers. Rollback,
    // re-partition and replay must land on the oracle bitwise.
    let mut clean = CpuSim::new(CpuSimConfig::new(params(25), 4)).expect("valid config");
    clean.run().expect("no faults");
    assert!(clean.recovery_log().is_empty());

    let plan = FaultPlan::from_events(vec![FaultEvent {
        superstep: 90,
        rank: 1,
        kind: FaultKind::RankDeath,
    }]);
    let cfg = CpuSimConfig::new(params(25), 4)
        .with_fault_plan(plan)
        .with_threads(4);
    let mut faulty = CpuSim::new(cfg).expect("valid config");
    faulty.run().expect("recovery must absorb the death");

    let log = faulty.recovery_log();
    assert_eq!(log.len(), 1, "exactly one recovery");
    assert_eq!(log[0].dead_ranks, vec![1]);
    assert_eq!(faulty.n_units(), 3, "domain shrank to the survivors");
    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after concurrent recovery"
    );
}

#[test]
fn slow_rank_stall_while_ranks_run_concurrently() {
    // A stalling rank skews the workers' relative progress — the barrier
    // protocol must absorb the skew without reordering anything observable.
    let mut clean = CpuSim::new(CpuSimConfig::new(params(26), 4)).expect("valid config");
    clean.run().expect("no faults");

    let events = (30..40u64)
        .map(|s| FaultEvent {
            superstep: s,
            rank: 2,
            kind: FaultKind::SlowRank { stall_ns: 200_000 },
        })
        .collect();
    let cfg = CpuSimConfig::new(params(26), 4)
        .with_fault_plan(FaultPlan::from_events(events))
        .with_threads(2);
    let mut stalled = CpuSim::new(cfg).expect("valid config");
    stalled.run().expect("stalls are not failures");

    let cc = stalled.comm_counters();
    assert!(cc.stalls > 0, "injected stalls must be counted");
    assert!(stalled.recovery_log().is_empty(), "no spurious recovery");
    assert_eq!(clean.history(), stalled.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&stalled.gather_world())
            .is_none(),
        "world diverged under stall injection"
    );
}
