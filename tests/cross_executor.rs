//! The central correctness claim of the reproduction (paper §4.1, made
//! strict): the serial reference, the CPU baseline and the GPU executor
//! produce **bitwise identical** trajectories for any decomposition, any
//! device count, any optimization variant, in 2D and 3D, with and without
//! airway structure.

use simcov_repro::simcov_core::airways::{airway_voxels, AirwayTree};
use simcov_repro::simcov_core::decomp::Strategy;
use simcov_repro::simcov_core::foi::FoiPattern;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::serial::SerialSim;
use simcov_repro::simcov_core::world::World;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

fn check_all(params: SimParams, world: World, ranks: &[usize], devices: &[usize]) {
    let mut serial = SerialSim::from_world(params.clone(), world.clone());
    serial.run();

    for &r in ranks {
        for strategy in [Strategy::Blocks, Strategy::Linear] {
            let cfg = CpuSimConfig::new(params.clone(), r).with_strategy(strategy);
            let mut cpu = CpuSim::from_world(cfg, world.clone()).expect("valid config");
            cpu.run().expect("healthy run");
            if let Some((idx, why)) = serial.world.first_difference(&cpu.gather_world()) {
                panic!("CPU({r} ranks, {strategy:?}) diverged at voxel {idx}: {why}");
            }
            // Exact summation makes the whole time series bitwise identical.
            assert_eq!(
                serial.history,
                *cpu.history(),
                "CPU({r} ranks, {strategy:?}) stats diverged"
            );
        }
    }
    for &d in devices {
        for v in GpuVariant::ALL {
            let cfg = GpuSimConfig::new(params.clone(), d).with_variant(v);
            let mut gpu = GpuSim::from_world(cfg, world.clone()).expect("valid config");
            gpu.run().expect("healthy run");
            if let Some((idx, why)) = serial.world.first_difference(&gpu.gather_world()) {
                panic!("GPU({d} devices, {v:?}) diverged at voxel {idx}: {why}");
            }
            assert_eq!(
                serial.history,
                *gpu.history(),
                "GPU({d} devices, {v:?}) stats diverged"
            );
        }
    }
}

#[test]
fn full_matrix_2d() {
    let params = SimParams::test_config(GridDims::new2d(30, 22), 120, 3, 99);
    let world = World::seeded(&params, FoiPattern::UniformLattice);
    check_all(params, world, &[2, 5], &[4, 6]);
}

#[test]
fn full_matrix_3d() {
    let params = SimParams::test_config(GridDims::new3d(14, 14, 14), 80, 2, 17);
    let world = World::seeded(&params, FoiPattern::UniformLattice);
    check_all(params, world, &[4], &[8]);
}

#[test]
fn with_airway_structure() {
    let dims = GridDims::new2d(40, 40);
    let params = SimParams::test_config(dims, 100, 4, 23);
    let mut world = World::seeded(&params, FoiPattern::UniformLattice);
    world.carve_airways(&airway_voxels(
        dims,
        &AirwayTree {
            generations: 4,
            ..Default::default()
        },
    ));
    check_all(params, world, &[4], &[4]);
}

#[test]
fn with_ct_lesion_seeding() {
    let dims = GridDims::new2d(36, 36);
    let params = SimParams::test_config(dims, 100, 0, 31);
    let world = World::seeded(
        &params,
        FoiPattern::CtLesions {
            clusters: 3,
            radius: 2,
        },
    );
    check_all(params, world, &[3], &[4]);
}

#[test]
fn many_seeds_quick() {
    // A cheap sweep over seeds: 1 CPU decomposition + 1 GPU variant each.
    for seed in [1u64, 2, 3, 4, 5] {
        let params = SimParams::test_config(GridDims::new2d(20, 20), 60, 2, seed);
        let world = World::seeded(&params, FoiPattern::UniformLattice);
        let mut serial = SerialSim::from_world(params.clone(), world.clone());
        serial.run();
        let mut cpu = CpuSim::from_world(CpuSimConfig::new(params.clone(), 4), world.clone())
            .expect("valid config");
        cpu.run().expect("healthy run");
        let mut gpu =
            GpuSim::from_world(GpuSimConfig::new(params, 4), world).expect("valid config");
        gpu.run().expect("healthy run");
        assert!(
            serial.world.first_difference(&cpu.gather_world()).is_none(),
            "seed {seed} cpu"
        );
        assert!(
            serial.world.first_difference(&gpu.gather_world()).is_none(),
            "seed {seed} gpu"
        );
    }
}

#[test]
fn uneven_grid_dimensions() {
    // Non-square grids with rank counts that don't divide evenly.
    let params = SimParams::test_config(GridDims::new2d(37, 19), 80, 2, 41);
    let world = World::seeded(&params, FoiPattern::UniformLattice);
    check_all(params, world, &[6], &[6]);
}

#[test]
fn tile_side_does_not_change_results() {
    let params = SimParams::test_config(GridDims::new2d(33, 33), 90, 2, 51);
    let world = World::seeded(&params, FoiPattern::UniformLattice);
    let mut reference: Option<World> = None;
    for tile_side in [2usize, 4, 8, 16] {
        let cfg = GpuSimConfig::new(params.clone(), 4).with_tile_side(tile_side);
        let mut gpu = GpuSim::from_world(cfg, world.clone()).expect("valid config");
        gpu.run().expect("healthy run");
        let w = gpu.gather_world();
        if let Some(r) = &reference {
            assert!(
                r.first_difference(&w).is_none(),
                "tile side {tile_side} changed results"
            );
        } else {
            reference = Some(w);
        }
    }
}
