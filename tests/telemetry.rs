//! Integration tests for the unified telemetry subsystem: the span hierarchy
//! must nest across all layers, the online health monitor must flag seeded
//! stragglers promptly, and instrumentation must be pure observation — a
//! telemetry-on run's trajectory must be bitwise identical to telemetry-off
//! on both executors.

use simcov_repro::pgas::{FaultEvent, FaultKind, FaultPlan};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};
use simcov_repro::simcov_telemetry::{HealthConfig, HealthKind, SpanKind, Telemetry};
use std::collections::HashMap;

fn params(steps: u64, seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), steps, 6, seed)
}

/// A seeded slow-rank fault must surface as a straggler health record within
/// three supersteps of injection, attributed to the right rank.
#[test]
fn seeded_slow_rank_is_flagged_within_three_supersteps() {
    let inject_at = 3u64;
    let mut cfg = CpuSimConfig::new(params(20, 5), 4);
    cfg.fault_plan = FaultPlan::from_events(vec![FaultEvent {
        superstep: inject_at,
        rank: 1,
        kind: FaultKind::SlowRank {
            stall_ns: 50_000_000, // 50 ms against ~µs-scale peers
        },
    }]);
    let mut sim = CpuSim::new(cfg).expect("valid config");
    sim.enable_telemetry(Telemetry::enabled(5, 1 << 14));
    sim.enable_health(HealthConfig::default());
    sim.run().expect("a stall is not a failure");

    let stragglers: Vec<_> = sim
        .health_records()
        .iter()
        .filter_map(|r| match &r.kind {
            HealthKind::Straggler { rank, z, .. } => Some((r.superstep, *rank, *z)),
            _ => None,
        })
        .collect();
    assert!(
        !stragglers.is_empty(),
        "injected stall never flagged: {:?}",
        sim.health_records()
    );
    let (ss, rank, z) = stragglers[0];
    assert_eq!(rank, 1, "wrong rank blamed");
    assert!(
        ss >= inject_at && ss <= inject_at + 3,
        "flagged at superstep {ss}, injected at {inject_at}"
    );
    assert!(z >= 4.0, "z = {z}");
}

/// Telemetry and health monitoring are pure observation: the instrumented
/// trajectory is identical to the uninstrumented one, on both executors.
#[test]
fn telemetry_on_trajectory_is_identical_to_off() {
    let p = params(15, 42);

    let mut cpu_off = CpuSim::new(CpuSimConfig::new(p.clone(), 4)).expect("valid config");
    cpu_off.run().expect("healthy run");
    let mut cpu_on = CpuSim::new(CpuSimConfig::new(p.clone(), 4)).expect("valid config");
    cpu_on.enable_telemetry(Telemetry::enabled(5, 1 << 14));
    cpu_on.enable_health(HealthConfig::default());
    cpu_on.run().expect("healthy run");
    assert_trajectories_identical(&cpu_off, &cpu_on, "cpu");

    let mut gpu_off = GpuSim::new(GpuSimConfig::new(p.clone(), 4)).expect("valid config");
    gpu_off.run().expect("healthy run");
    let mut gpu_on = GpuSim::new(GpuSimConfig::new(p, 4)).expect("valid config");
    gpu_on.enable_telemetry(Telemetry::enabled(5, 1 << 14));
    gpu_on.enable_health(HealthConfig::default());
    gpu_on.run().expect("healthy run");
    assert_trajectories_identical(&gpu_off, &gpu_on, "gpu");
}

fn assert_trajectories_identical(off: &dyn Simulation, on: &dyn Simulation, who: &str) {
    let (a, b) = (&off.history().steps, &on.history().steps);
    assert_eq!(a.len(), b.len(), "{who}: step counts diverged");
    for (x, y) in a.iter().zip(b.iter()) {
        assert!(
            x.approx_eq(y, 0.0),
            "{who}: telemetry perturbed the trajectory at step {}",
            x.step
        );
    }
}

/// The GPU executor's span stream nests four levels deep: driver step →
/// BSP superstep → per-rank compute/exchange phase → device kernel phase.
#[test]
fn gpu_span_stream_nests_four_levels() {
    let mut sim = GpuSim::new(GpuSimConfig::new(params(8, 11), 4)).expect("valid config");
    sim.enable_telemetry(Telemetry::enabled(5, 1 << 14));
    sim.run().expect("healthy run");
    let tel = sim.telemetry_handle();
    assert_eq!(tel.dropped(), 0, "ring sized for the whole run");

    let events = tel.events();
    let by_id: HashMap<u64, (SpanKind, u64)> =
        events.iter().map(|e| (e.id, (e.kind, e.parent))).collect();
    let mut full_chains = 0usize;
    for e in &events {
        if e.kind != SpanKind::Kernel {
            continue;
        }
        let Some(&(pk, pp)) = by_id.get(&e.parent) else {
            continue;
        };
        let Some(&(gk, gp)) = by_id.get(&pp) else {
            continue;
        };
        let Some(&(sk, _)) = by_id.get(&gp) else {
            continue;
        };
        if pk == SpanKind::RankPhase && gk == SpanKind::Superstep && sk == SpanKind::Step {
            full_chains += 1;
        }
    }
    assert!(
        full_chains > 0,
        "no kernel span chains kernel → rank-phase → superstep → step"
    );

    // Volumes on the spans are live: at least one kernel span reports work.
    assert!(
        events.iter().any(|e| e.kind == SpanKind::Kernel && e.a > 0),
        "kernel spans never carry element counts"
    );
}
