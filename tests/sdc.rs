//! Silent-data-corruption defense tests: injected bit flips — in in-flight
//! coalesced batches, in rank-resident state between steps, and in stored
//! checkpoint generations — must be detected by the integrity lattice
//! (batch CRC64, end-of-step seal scrub, ABFT invariant audit, checkpoint
//! seals), healed by the matching tier of the recovery ladder (in-barrier
//! retransmit, verified-checkpoint rollback, generation quarantine), and
//! every healed run must be **bitwise identical** to the corruption-free
//! run — statistics and per-voxel state.

use simcov_repro::pgas::{
    CorruptionKind, FaultEvent, FaultKind, FaultPlan, FaultRates, IntegrityAction,
    IntegrityDetector,
};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::{
    load_checkpoint, persist_checkpoint, Executor, RecoveryPolicy, SimError, Simulation,
};
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn params(seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), 60, 8, seed)
}

fn payload(superstep: u64, rank: usize, seed: u64) -> FaultEvent {
    FaultEvent {
        superstep,
        rank,
        kind: FaultKind::PayloadCorruption { seed },
    }
}

fn state(superstep: u64, rank: usize, seed: u64) -> FaultEvent {
    FaultEvent {
        superstep,
        rank,
        kind: FaultKind::StateCorruption { seed },
    }
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        checkpoint_period: 8,
        ..RecoveryPolicy::default()
    }
}

fn assert_identical<A: Simulation + ?Sized, B: Simulation + ?Sized>(clean: &A, healed: &B) {
    assert_eq!(
        clean.history(),
        healed.history(),
        "healed time series diverged"
    );
    if let Some((idx, why)) = clean
        .gather_world()
        .first_difference(&healed.gather_world())
    {
        panic!("healed state diverged at voxel {idx}: {why}");
    }
}

/// A bit flip in an in-flight halo batch is caught by the delivery-side
/// CRC64 and healed by retransmission inside the same barrier: no rollback,
/// no divergence.
#[test]
fn cpu_payload_corruption_heals_in_barrier() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(3), 4)).expect("valid config");
    clean.run().expect("no faults");

    // CPU steps are 3 supersteps; 95 is a state-exchange superstep
    // mid-infection, so halos are in flight to corrupt.
    let plan = FaultPlan::from_events(vec![payload(95, 0, 0xC0FFEE)]);
    let mut faulty =
        CpuSim::new(CpuSimConfig::new(params(3), 4).with_fault_plan(plan)).expect("valid config");
    faulty.run().expect("retransmit must absorb the flip");

    let cc = faulty.comm_counters();
    assert_eq!(cc.corruptions_landed, 1, "the flip must land in a batch");
    assert_eq!(cc.corrupt_batches, 1);
    assert_eq!(cc.retransmits, 1, "healed by one in-barrier retransmit");
    assert!(
        faulty.recovery_log().is_empty(),
        "in-barrier healing needs no rollback"
    );
    let log = &faulty.core().integrity_log;
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].kind, CorruptionKind::Payload);
    assert_eq!(log[0].detector, IntegrityDetector::BatchCrc);
    assert_eq!(log[0].action, IntegrityAction::Retransmit);
    assert_eq!(log[0].step, log[0].injected_step, "zero detection latency");
    assert_identical(&clean, &faulty);
}

/// The same in-barrier healing on the GPU executor's bulk halo wave.
#[test]
fn gpu_payload_corruption_heals_in_barrier() {
    let mut clean = GpuSim::new(GpuSimConfig::new(params(5), 4)).expect("valid config");
    clean.run().expect("no faults");

    // GPU steps are 2 supersteps; 61 is the halo wave of step 31.
    let plan = FaultPlan::from_events(vec![payload(61, 1, 0xBEEF)]);
    let mut faulty =
        GpuSim::new(GpuSimConfig::new(params(5), 4).with_fault_plan(plan)).expect("valid config");
    faulty.run().expect("retransmit must absorb the flip");

    let cc = faulty.comm_counters();
    assert_eq!(cc.corruptions_landed, 1);
    assert_eq!(cc.retransmits, 1);
    assert!(faulty.recovery_log().is_empty());
    assert_identical(&clean, &faulty);
}

/// A bit flip in rank-resident state between steps survives the barrier —
/// no message carried it — but the next step's seal scrub catches it and
/// the driver rolls back to the last *verified* checkpoint. Detection
/// latency is exactly one step boundary.
#[test]
fn cpu_state_corruption_scrubs_and_rolls_back() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(7), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![state(95, 2, 0xDA7A)]);
    let mut faulty = CpuSim::new(
        CpuSimConfig::new(params(7), 4)
            .with_fault_plan(plan)
            .with_recovery(policy()),
    )
    .expect("valid config");
    faulty.run().expect("rollback must absorb the flip");

    let rec = faulty.recovery_log();
    assert_eq!(rec.len(), 1, "one rollback");
    assert!(rec[0].dead_ranks.is_empty(), "no ranks died");
    assert_eq!(rec[0].survivors, 4, "SDC rollback keeps the partition");
    assert_eq!(faulty.n_units(), 4);

    let log = &faulty.core().integrity_log;
    let state_recs: Vec<_> = log
        .iter()
        .filter(|r| r.kind == CorruptionKind::State)
        .collect();
    assert_eq!(state_recs.len(), 1, "one state detection");
    assert_eq!(state_recs[0].detector, IntegrityDetector::SealScrub);
    assert_eq!(state_recs[0].action, IntegrityAction::Rollback);
    assert_eq!(
        state_recs[0].step - state_recs[0].injected_step,
        1,
        "the scrub catches the flip at the next step boundary"
    );
    assert_identical(&clean, &faulty);
}

/// The same scrub-and-rollback tier on the GPU executor.
#[test]
fn gpu_state_corruption_scrubs_and_rolls_back() {
    let mut clean = GpuSim::new(GpuSimConfig::new(params(9), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![state(63, 1, 0x51CC)]);
    let mut faulty = GpuSim::new(
        GpuSimConfig::new(params(9), 4)
            .with_fault_plan(plan)
            .with_recovery(policy()),
    )
    .expect("valid config");
    faulty.run().expect("rollback must absorb the flip");

    assert_eq!(faulty.recovery_log().len(), 1);
    assert_eq!(faulty.n_units(), 4, "no shrink on SDC rollback");
    let log = &faulty.core().integrity_log;
    assert!(log.iter().any(|r| r.kind == CorruptionKind::State
        && r.detector == IntegrityDetector::SealScrub
        && r.action == IntegrityAction::Rollback));
    assert_identical(&clean, &faulty);
}

/// A rank dies in the same superstep another rank's batch is corrupted: the
/// fail-stop tier (shrink + replay) and the SDC tier (retransmit) fire
/// together and the run still lands bitwise identical.
#[test]
fn rank_death_and_payload_corruption_in_one_superstep() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(11), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![
        FaultEvent {
            superstep: 90,
            rank: 1,
            kind: FaultKind::RankDeath,
        },
        payload(90, 2, 0xD00D),
    ]);
    let mut faulty = CpuSim::new(
        CpuSimConfig::new(params(11), 4)
            .with_fault_plan(plan)
            .with_recovery(policy()),
    )
    .expect("valid config");
    faulty.run().expect("both tiers must absorb their faults");

    let rec = faulty.recovery_log();
    assert_eq!(rec.len(), 1, "the death forces one recovery");
    assert_eq!(rec[0].dead_ranks, vec![1]);
    assert_eq!(faulty.n_units(), 3, "domain shrank to the survivors");
    assert_identical(&clean, &faulty);
}

/// A second state corruption lands while the driver is still replaying the
/// first rollback (the superstep clock is monotonic, so the event fires
/// mid-replay): the scrub catches it again and the ladder recovers twice.
#[test]
fn corruption_during_rollback_replay_recovers_again() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(13), 4)).expect("valid config");
    clean.run().expect("no faults");

    // First flip at superstep 90 (step 30, detected at 31, rolled back to
    // 24) — replay spans supersteps ~93..; the second flip at 99 lands
    // inside that replay window.
    let plan = FaultPlan::from_events(vec![state(90, 0, 0xAAA), state(99, 3, 0xBBB)]);
    let mut faulty = CpuSim::new(
        CpuSimConfig::new(params(13), 4)
            .with_fault_plan(plan)
            .with_recovery(policy()),
    )
    .expect("valid config");
    faulty.run().expect("both flips must be absorbed");

    assert_eq!(faulty.recovery_log().len(), 2, "two rollbacks");
    let log = &faulty.core().integrity_log;
    assert_eq!(
        log.iter()
            .filter(|r| r.kind == CorruptionKind::State)
            .count(),
        2,
        "both flips detected and attributed"
    );
    assert_identical(&clean, &faulty);
}

/// With a zero retransmit budget the corrupt batch cannot be healed in the
/// barrier: the superstep surfaces a typed integrity failure and the driver
/// escalates to the rollback tier instead.
#[test]
fn zero_retransmit_budget_escalates_to_rollback() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(17), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![payload(95, 0, 0xE5C)]);
    let mut faulty = CpuSim::new(
        CpuSimConfig::new(params(17), 4)
            .with_fault_plan(plan)
            .with_recovery(policy())
            .with_retransmit_budget(0),
    )
    .expect("valid config");
    faulty
        .run()
        .expect("rollback must absorb the unhealed batch");

    let rec = faulty.recovery_log();
    assert_eq!(rec.len(), 1, "escalated to one rollback");
    assert!(rec[0].dead_ranks.is_empty());
    assert_eq!(faulty.comm_counters().retransmits, 0, "budget was zero");
    let log = &faulty.core().integrity_log;
    assert!(log
        .iter()
        .any(|r| r.kind == CorruptionKind::Payload && r.action == IntegrityAction::Rollback));
    assert_identical(&clean, &faulty);
}

/// When the rollback tier is exhausted too (zero retries), the unhealed
/// corruption surfaces as a typed error naming the integrity failure — so
/// callers can distinguish SDC from fail-stop faults.
#[test]
fn unhealed_corruption_with_no_retries_is_a_typed_error() {
    let plan = FaultPlan::from_events(vec![payload(95, 0, 0xFA7A)]);
    let mut faulty = CpuSim::new(
        CpuSimConfig::new(params(17), 4)
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy {
                max_retries: 0,
                ..RecoveryPolicy::default()
            })
            .with_retransmit_budget(0),
    )
    .expect("valid config");
    match faulty.run() {
        Err(SimError::RetriesExhausted { last, attempts }) => {
            assert_eq!(attempts, 1);
            assert!(
                last.to_string().contains("integrity"),
                "error must name the integrity failure: {last}"
            );
        }
        other => panic!("expected retries-exhausted on the integrity failure, got {other:?}"),
    }
}

/// The most aggressive audit cadence (every step) stays silent on clean
/// runs — zero false positives — on both executors, and the audited run is
/// bitwise identical to the unaudited one.
#[test]
fn audit_period_one_has_zero_false_positives_on_both_executors() {
    let mut plain_cpu = CpuSim::new(CpuSimConfig::new(params(19), 4)).expect("valid config");
    plain_cpu.run().expect("no faults");
    let mut audited_cpu =
        CpuSim::new(CpuSimConfig::new(params(19), 4).with_audit_period(1)).expect("valid config");
    audited_cpu.run().expect("no faults");
    assert!(
        audited_cpu.core().integrity_log.is_empty(),
        "false positive"
    );
    let mon = audited_cpu.core().integrity.as_ref().expect("engaged");
    assert_eq!(mon.audits_run, 60, "audited every step");
    assert_eq!(mon.violations, 0);
    assert_identical(&plain_cpu, &audited_cpu);

    let mut plain_gpu = GpuSim::new(GpuSimConfig::new(params(19), 4)).expect("valid config");
    plain_gpu.run().expect("no faults");
    let mut audited_gpu =
        GpuSim::new(GpuSimConfig::new(params(19), 4).with_audit_period(1)).expect("valid config");
    audited_gpu.run().expect("no faults");
    assert!(
        audited_gpu.core().integrity_log.is_empty(),
        "false positive"
    );
    assert_identical(&plain_gpu, &audited_gpu);
}

/// Seeded corruption on both channels with audits every step: the full
/// ladder engages and the healed run is identical on both executors.
#[test]
fn seeded_corruption_with_audit_period_one_is_bitwise_identical() {
    let rates = FaultRates {
        payload_corruption: 0.004,
        state_corruption: 0.004,
        ..FaultRates::default()
    };

    let mut clean_cpu = CpuSim::new(CpuSimConfig::new(params(23), 4)).expect("valid config");
    clean_cpu.run().expect("no faults");
    let mut cpu = CpuSim::new(
        CpuSimConfig::new(params(23), 4)
            .with_fault_plan(FaultPlan::seeded(0x5DC1, &rates, 4, 180))
            .with_recovery(policy())
            .with_audit_period(1),
    )
    .expect("valid config");
    cpu.run().expect("the ladder must absorb the seeded flips");
    assert_identical(&clean_cpu, &cpu);

    let mut clean_gpu = GpuSim::new(GpuSimConfig::new(params(23), 4)).expect("valid config");
    clean_gpu.run().expect("no faults");
    let mut gpu = GpuSim::new(
        GpuSimConfig::new(params(23), 4)
            .with_fault_plan(FaultPlan::seeded(0x5DC2, &rates, 4, 120))
            .with_recovery(policy())
            .with_audit_period(1),
    )
    .expect("valid config");
    gpu.run().expect("the ladder must absorb the seeded flips");
    assert_identical(&clean_gpu, &gpu);
}

/// Durable crash restart: persist mid-run, rebuild a fresh simulation from
/// the file, and finish — the final statistics and world are bitwise
/// identical to the uninterrupted run.
#[test]
fn durable_persist_and_resume_reproduce_the_uninterrupted_run() {
    let p = params(29);
    let path = std::env::temp_dir().join(format!("simcov_sdc_resume_{}.ck", std::process::id()));

    let mut uninterrupted = CpuSim::new(CpuSimConfig::new(p.clone(), 4)).expect("valid config");
    uninterrupted.run().expect("no faults");

    // First process: run half-way, persist, "crash" (drop).
    {
        let mut first = CpuSim::new(CpuSimConfig::new(p.clone(), 4)).expect("valid config");
        while first.step() < 30 {
            first.advance_step().expect("no faults");
        }
        persist_checkpoint(&path, &p, &first.checkpoint()).expect("persist");
    }

    // Second process: resume from the file and finish.
    let cp = load_checkpoint(&path, &p).expect("load");
    assert_eq!(cp.step, 30);
    let mut resumed = CpuSim::new(CpuSimConfig::new(p, 4)).expect("valid config");
    resumed.restore(&cp).expect("restore");
    resumed.run().expect("no faults");

    assert_identical(&uninterrupted, &resumed);
    let _ = std::fs::remove_file(&path);
}

/// The same durable round-trip on the GPU executor, resuming at a step that
/// is *not* a multiple of the tile-activity check period: the rebuilt
/// devices must re-derive the active tile set from the restored state
/// instead of idling interior tiles until the schedule comes around.
#[test]
fn gpu_durable_resume_off_the_check_schedule_is_bitwise_identical() {
    // 64×64 so the tile layout has interior (non-ghost) tiles — those are
    // exactly the ones a naive rebuild leaves idle until the next check.
    let p = SimParams::test_config(GridDims::new2d(64, 64), 60, 8, 31);
    let path =
        std::env::temp_dir().join(format!("simcov_sdc_gpu_resume_{}.ck", std::process::id()));

    let mut uninterrupted = GpuSim::new(GpuSimConfig::new(p.clone(), 4)).expect("valid config");
    uninterrupted.run().expect("no faults");

    // 27 is coprime with every admissible check period > 1 and not a
    // checkpoint boundary either.
    {
        let mut first = GpuSim::new(GpuSimConfig::new(p.clone(), 4)).expect("valid config");
        while first.step() < 27 {
            first.advance_step().expect("no faults");
        }
        persist_checkpoint(&path, &p, &first.checkpoint()).expect("persist");
    }

    let cp = load_checkpoint(&path, &p).expect("load");
    assert_eq!(cp.step, 27);
    let mut resumed = GpuSim::new(GpuSimConfig::new(p, 4)).expect("valid config");
    resumed.restore(&cp).expect("restore");
    resumed.run().expect("no faults");

    assert_identical(&uninterrupted, &resumed);
    let _ = std::fs::remove_file(&path);
}
