//! Differential suite for the wide-lane SIMD kernels (`simcov_core::lanes`).
//!
//! The scalar per-voxel path is kept alive as the oracle; every test here
//! runs the same seeded simulation through both [`KernelMode`]s and demands
//! **bitwise** equality — per step, over full trajectories, and on all three
//! executors. The shapes are chosen adversarially for a chunked kernel:
//! lane-width-±1 remainders, single-row/column grids, grids with no interior
//! voxel at all (every voxel is boundary), and denormal-adjacent
//! concentrations that expose any flush-to-zero or reassociation difference
//! between the paths.

use simcov_repro::simcov_core::foi::FoiPattern;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::lanes::{KernelMode, LANES};
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::serial::SerialSim;
use simcov_repro::simcov_core::world::World;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

const L: u32 = LANES as u32;

/// Grid shapes that stress the chunked kernel's run detection and tail
/// handling. Comments give the interior-row run length (`nx - 2` in 2D).
fn adversarial_dims() -> Vec<GridDims> {
    vec![
        GridDims::new2d(2, 2),         // no interior voxel: checked path only
        GridDims::new2d(3, 3),         // single interior voxel: run length 1
        GridDims::new2d(64, 1),        // single row: all boundary
        GridDims::new2d(1, 64),        // single column: all boundary
        GridDims::new2d(L + 1, 6),     // run LANES-1: pure scalar tail
        GridDims::new2d(L + 2, 6),     // run LANES: one chunk, no tail
        GridDims::new2d(L + 3, 6),     // run LANES+1: chunk + width-1 remainder
        GridDims::new2d(2 * L + 5, 7), // two chunks + 3-wide tail
        GridDims::new3d(3, 3, 3),      // 3D single interior voxel
        GridDims::new3d(L + 3, 5, 4),  // 3D chunk + width-1 remainder per row
    ]
}

/// Advance scalar and wide serial sims in lockstep, demanding bitwise
/// equality of the full world after **every** step, not just at the end.
fn assert_step_locked(params: &SimParams, world: &World, steps: u64, label: &str) {
    let mut scalar =
        SerialSim::from_world(params.clone(), world.clone()).with_kernel(KernelMode::Scalar);
    let mut wide =
        SerialSim::from_world(params.clone(), world.clone()).with_kernel(KernelMode::Wide);
    for step in 0..steps {
        scalar.advance_step();
        wide.advance_step();
        if let Some((idx, why)) = scalar.world.first_difference(&wide.world) {
            panic!("{label}: wide diverged from scalar at step {step}, voxel {idx}: {why}");
        }
    }
    assert_eq!(
        scalar.history, wide.history,
        "{label}: trajectory stats diverged"
    );
}

/// Run both executors under both kernel modes against the scalar serial
/// oracle over the full trajectory.
fn assert_executors_match_oracle(
    params: &SimParams,
    world: &World,
    ranks: usize,
    devices: usize,
    label: &str,
) {
    let mut oracle =
        SerialSim::from_world(params.clone(), world.clone()).with_kernel(KernelMode::Scalar);
    oracle.run();

    for kernel in [KernelMode::Scalar, KernelMode::Wide] {
        let cfg = CpuSimConfig::new(params.clone(), ranks).with_kernel(kernel);
        let mut cpu = CpuSim::from_world(cfg, world.clone()).expect("valid config");
        cpu.run().expect("healthy run");
        if let Some((idx, why)) = oracle.world.first_difference(&cpu.gather_world()) {
            panic!(
                "{label}: CPU({ranks} ranks, {} kernel) diverged at voxel {idx}: {why}",
                kernel.name()
            );
        }
        assert_eq!(
            oracle.history,
            *cpu.history(),
            "{label}: CPU({ranks} ranks, {} kernel) stats diverged",
            kernel.name()
        );

        let cfg = GpuSimConfig::new(params.clone(), devices).with_kernel(kernel);
        let mut gpu = GpuSim::from_world(cfg, world.clone()).expect("valid config");
        gpu.run().expect("healthy run");
        if let Some((idx, why)) = oracle.world.first_difference(&gpu.gather_world()) {
            panic!(
                "{label}: GPU({devices} devices, {} kernel) diverged at voxel {idx}: {why}",
                kernel.name()
            );
        }
        assert_eq!(
            oracle.history,
            *gpu.history(),
            "{label}: GPU({devices} devices, {} kernel) stats diverged",
            kernel.name()
        );
    }
}

#[test]
fn wide_matches_scalar_stepwise_on_adversarial_shapes() {
    for dims in adversarial_dims() {
        for seed in [5u64, 11] {
            let params = SimParams::test_config(dims, 24, 2, seed);
            let world = World::seeded(&params, FoiPattern::UniformLattice);
            assert_step_locked(&params, &world, 24, &format!("{dims:?} seed {seed}"));
        }
    }
}

#[test]
fn executors_match_scalar_oracle_on_adversarial_shapes() {
    for dims in adversarial_dims() {
        let params = SimParams::test_config(dims, 20, 2, 13);
        let world = World::seeded(&params, FoiPattern::UniformLattice);
        assert_executors_match_oracle(&params, &world, 2, 2, &format!("{dims:?}"));
    }
}

#[test]
fn denormal_adjacent_concentrations_stay_bitwise() {
    // Disable the flush thresholds so subnormal concentrations survive into
    // the gather sums, then plant magnitudes from 1e7 down to true f32
    // denormals. Any reassociation or per-lane flush difference between the
    // paths shows up in the very first diffusion step.
    let dims = GridDims::new2d(2 * L + 5, 9);
    let mut params = SimParams::test_config(dims, 16, 2, 3);
    params.min_virions = 0.0;
    params.min_chemokine = 0.0;
    let mut world = World::seeded(&params, FoiPattern::UniformLattice);
    for i in 0..dims.nvoxels() {
        let v = match i % 5 {
            0 => 1.0e7,
            1 => f32::from_bits(1 + (i % 7) as u32), // true denormals
            2 => 1.0e-38,                            // just above subnormal
            3 => 1.0,
            _ => 1.0e-30,
        };
        world.virions.set(i, world.virions.get(i) + v);
        world.chemokine.set(i, world.chemokine.get(i) + v * 0.5);
    }
    assert_step_locked(&params, &world, 16, "denormal-adjacent");
    assert_executors_match_oracle(&params, &world, 3, 2, "denormal-adjacent");
}

#[test]
fn ct_lesion_seeding_is_kernel_invariant() {
    // CT-lesion seeding exercises the row-span rewrite in `foi.rs`; the
    // lesion voxel set and everything downstream must not depend on the
    // kernel mode.
    let dims = GridDims::new2d(36, 19);
    let params = SimParams::test_config(dims, 30, 0, 31);
    let world = World::seeded(
        &params,
        FoiPattern::CtLesions {
            clusters: 3,
            radius: 2,
        },
    );
    assert_step_locked(&params, &world, 30, "ct-lesions");
    assert_executors_match_oracle(&params, &world, 3, 4, "ct-lesions");
}

#[test]
fn randomized_shape_and_seed_sweep() {
    // A seeded LCG drives shapes (1..=25 × 1..=18) and master seeds, so the
    // suite probes a different-but-reproducible corner of the shape space on
    // every run of the loop body. Bitwise per-step equality plus a CPU
    // executor trajectory check per sample.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for k in 0..8u64 {
        let nx = 1 + (next() % 25) as u32;
        let ny = 1 + (next() % 18) as u32;
        let dims = GridDims::new2d(nx, ny);
        let params = SimParams::test_config(dims, 14, 2, 100 + k);
        let world = World::seeded(&params, FoiPattern::UniformLattice);
        let label = format!("sweep {k}: {nx}x{ny}");
        assert_step_locked(&params, &world, 14, &label);

        let mut oracle =
            SerialSim::from_world(params.clone(), world.clone()).with_kernel(KernelMode::Scalar);
        oracle.run();
        let cfg = CpuSimConfig::new(params.clone(), 2).with_kernel(KernelMode::Wide);
        let mut cpu = CpuSim::from_world(cfg, world).expect("valid config");
        cpu.run().expect("healthy run");
        assert!(
            oracle.world.first_difference(&cpu.gather_world()).is_none(),
            "{label}: cpu wide diverged from scalar oracle"
        );
    }
}
