//! Property and cascade tests for the pure driver control plane, plus
//! live-vs-replay equivalence on the real executors.
//!
//! The pure core makes a failure cascade — a rank death during a rollback
//! during a corruption quarantine — just an event sequence. The seeded
//! suite here drives thousands of such sequences through
//! [`DriverState::apply`] with no threads, disk or fault-plan plumbing,
//! checking the invariants the interleaved implementation could only
//! exercise one hand-built scenario at a time. The live tests then record
//! real CPU/GPU runs and prove the event log replays — with zero
//! filesystem or executor access — to the exact control state and record
//! streams the live run produced.

use std::collections::VecDeque;

use simcov_repro::pgas::{
    CorruptionKind, IntegrityAction, IntegrityDetector, IntegrityFailure, SuperstepError,
    SuperstepFailure,
};
use simcov_repro::pgas::{FaultEvent, FaultKind, FaultPlan};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::integrity::IntegrityViolation;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::state::{ScrubVerdict, StopCause};
use simcov_repro::simcov_driver::{
    replay, DriverState, Effect, Event, RecoveryPolicy, SerialDriver, SimError, Simulation,
};
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

// ---------------------------------------------------------------------------
// Seeded cascade generator
// ---------------------------------------------------------------------------

/// Small deterministic PCG-ish generator; the suite must be reproducible
/// from its seeds alone.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn violation(rng: &mut Lcg) -> IntegrityViolation {
    if rng.chance(50) {
        IntegrityViolation::SealMismatch {
            expected: rng.next(),
            got: rng.next(),
        }
    } else {
        IntegrityViolation::NonFinite {
            field: "virions",
            index: rng.below(1024) as usize,
        }
    }
}

fn superstep_error(rng: &mut Lcg, units: usize) -> SuperstepError {
    if rng.chance(60) {
        let n_dead = if rng.chance(70) { 1 } else { 2 };
        let dead: Vec<usize> = (0..n_dead.min(units.saturating_sub(1).max(1)))
            .map(|k| (rng.below(units as u64) as usize).saturating_sub(k) % units.max(1))
            .collect();
        SuperstepError::Failure(SuperstepFailure {
            superstep: rng.below(500),
            dead_ranks: dead,
            dropped_messages: rng.below(40),
        })
    } else {
        SuperstepError::Integrity(IntegrityFailure {
            superstep: rng.below(500),
            corrupt_batches: 1 + rng.below(3),
            healed: 0,
            unhealed: 1 + rng.below(2),
        })
    }
}

/// Drive one seeded cascade: generate shell-shaped events, answer every
/// [`Effect::FetchRollbackTarget`] the way a checkpoint store would
/// (usually the newest generation, sometimes older after quarantine,
/// sometimes nothing left), and return the full log plus the state
/// trajectory for invariant checks.
fn run_cascade(seed: u64, len: usize) -> (DriverState, Vec<Event>, Vec<DriverState>) {
    let policy = RecoveryPolicy {
        checkpoint_period: 4,
        max_retries: 3,
        backoff_base_ns: 1_000,
    };
    let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).max(1));
    let initial = DriverState::initial(4, Some(policy), true);
    let mut state = initial.clone();
    let mut events: Vec<Event> = Vec::new();
    let mut trajectory: Vec<DriverState> = Vec::new();
    let mut queue: VecDeque<Event> = VecDeque::new();

    for _ in 0..len {
        // Synthesize the next observation the way the shell would.
        if queue.is_empty() {
            let ev = if state.halted.is_some() {
                // A halted run only comes back via an external restore (or
                // keeps absorbing whatever straggles in).
                if rng.chance(40) {
                    Event::ExternalRestore {
                        step: rng.below(50),
                    }
                } else {
                    Event::StepComputed { step: state.step }
                }
            } else {
                match rng.below(100) {
                    0..=9 => Event::AdvanceRequested,
                    10..=19 => Event::Scrubbed {
                        verdict: if rng.chance(40) {
                            Some(ScrubVerdict {
                                violation: violation(&mut rng),
                                detector: if rng.chance(50) {
                                    IntegrityDetector::SealScrub
                                } else {
                                    IntegrityDetector::InvariantAudit
                                },
                            })
                        } else {
                            None
                        },
                    },
                    20..=34 if state.checkpoint_due() => {
                        Event::CheckpointSaved { step: state.step }
                    }
                    20..=34 => Event::StepComputed { step: state.step },
                    35..=54 => Event::ComputeFailed {
                        error: superstep_error(&mut rng, state.units),
                    },
                    55..=62 => Event::CorruptionApplied {
                        step: state.step,
                        superstep: rng.below(500),
                    },
                    63..=66 => Event::ExternalRestore {
                        step: rng.below(50),
                    },
                    _ => Event::StepComputed { step: state.step },
                }
            };
            queue.push_back(ev);
        }
        let ev = queue.pop_front().expect("just filled");
        events.push(ev.clone());
        let (next, effects) = state.clone().apply(ev);
        state = next;
        trajectory.push(state.clone());
        for eff in effects {
            if let Effect::FetchRollbackTarget { .. } = eff {
                // Model the store: the target is at or below the newest
                // generation (quarantine pops generations), never above
                // the failed step, and occasionally the store is dry.
                let answer = if rng.chance(8) {
                    Event::RollbackTargetFetched {
                        step: None,
                        quarantined: rng.below(3),
                    }
                } else {
                    let quarantined = rng.below(3);
                    let newest = state.last_checkpoint_step.unwrap_or(0).min(state.step);
                    let target = newest.saturating_sub(quarantined * policy.checkpoint_period);
                    Event::RollbackTargetFetched {
                        step: Some(target),
                        quarantined,
                    }
                };
                queue.push_back(answer);
            }
        }
    }
    (initial, events, trajectory)
}

// ---------------------------------------------------------------------------
// Pure-core properties over seeded cascades
// ---------------------------------------------------------------------------

/// The transition function is pure: replaying the recorded event log twice
/// produces bit-identical trajectories, effects and final state — and the
/// trajectory matches the one the generator observed live.
#[test]
fn replay_is_deterministic_and_matches_the_generating_fold() {
    for seed in 0..200u64 {
        let (initial, events, trajectory) = run_cascade(seed, 80);
        let a = replay(initial.clone(), &events);
        let b = replay(initial.clone(), &events);
        assert_eq!(a, b, "seed {seed}: replay is not deterministic");
        assert_eq!(
            a.trajectory, trajectory,
            "seed {seed}: replay diverged from the generating fold"
        );
        assert_eq!(a.final_state, *trajectory.last().expect("non-empty"));
        assert_eq!(a.halt, a.final_state.halted);
    }
}

/// The retry budget is honored on every cascade: while the run is live the
/// attempt counter never exceeds `max_retries`, and a halted run's counter
/// never exceeds `max_retries + 1` (the attempt that gave up).
#[test]
fn property_attempt_never_exceeds_the_retry_budget() {
    for seed in 200..400u64 {
        let (initial, _, trajectory) = run_cascade(seed, 80);
        let max = initial.policy.expect("engaged").max_retries;
        for (i, s) in trajectory.iter().enumerate() {
            assert!(
                s.attempt <= max + 1,
                "seed {seed} event {i}: attempt {} blew the budget {max}",
                s.attempt
            );
            if s.halted.is_none() && s.pending.is_none() {
                assert!(
                    s.attempt <= max,
                    "seed {seed} event {i}: live state holds attempt {} > {max}",
                    s.attempt
                );
            }
        }
    }
}

/// Elastic re-partitioning never collapses to zero units and never grows
/// the domain: survivors only shrink, and only at a decided rollback.
#[test]
fn property_units_never_zero_and_never_grow() {
    for seed in 400..600u64 {
        let (initial, _, trajectory) = run_cascade(seed, 80);
        let mut prev = initial.units;
        for (i, s) in trajectory.iter().enumerate() {
            assert!(s.units >= 1, "seed {seed} event {i}: zero units");
            assert!(
                s.units <= prev,
                "seed {seed} event {i}: units grew {prev} -> {}",
                s.units
            );
            prev = s.units;
        }
    }
}

/// A halted core absorbs every event except an external restore, which
/// rearms it on a fresh timeline.
#[test]
fn property_halt_absorbs_everything_but_restore() {
    for seed in 600..700u64 {
        let (_, _, trajectory) = run_cascade(seed, 80);
        let Some(halted) = trajectory.iter().find(|s| s.halted.is_some()) else {
            continue;
        };
        let frozen = halted.clone();
        for ev in [
            Event::AdvanceRequested,
            Event::StepComputed { step: 99 },
            Event::CheckpointSaved { step: 99 },
            Event::ComputeFailed {
                error: SuperstepError::Failure(SuperstepFailure {
                    superstep: 1,
                    dead_ranks: vec![0],
                    dropped_messages: 0,
                }),
            },
            Event::RollbackTargetFetched {
                step: Some(0),
                quarantined: 5,
            },
        ] {
            let (next, effects) = frozen.clone().apply(ev);
            assert_eq!(next, frozen, "seed {seed}: halted state mutated");
            assert!(effects.is_empty(), "seed {seed}: halted state acted");
        }
        let (revived, effects) = frozen.clone().apply(Event::ExternalRestore { step: 7 });
        assert!(effects.is_empty());
        assert!(revived.halted.is_none(), "restore must rearm");
        assert_eq!(revived.step, 7);
        assert_eq!(revived.attempt, 0);
        assert_eq!(revived.last_checkpoint_step, None);
        // The record streams survive the restore: history is never erased.
        assert_eq!(revived.recovery_log, frozen.recovery_log);
        assert_eq!(revived.integrity_log, frozen.integrity_log);
    }
}

/// The record streams are append-only along every trajectory, and every
/// recovery record respects the ladder's arithmetic: the rollback target is
/// at or below the failed step, survivors are positive, and the metered
/// backoff matches the policy for the recorded attempt.
#[test]
fn property_records_are_append_only_and_well_formed() {
    for seed in 700..900u64 {
        let (initial, _, trajectory) = run_cascade(seed, 80);
        let policy = initial.policy.expect("engaged");
        let (mut rlen, mut ilen) = (0usize, 0usize);
        for (i, s) in trajectory.iter().enumerate() {
            assert!(
                s.recovery_log.len() >= rlen && s.integrity_log.len() >= ilen,
                "seed {seed} event {i}: a record stream shrank"
            );
            rlen = s.recovery_log.len();
            ilen = s.integrity_log.len();
        }
        let last = trajectory.last().expect("non-empty");
        for r in &last.recovery_log {
            assert!(r.rollback_step <= r.failed_step, "seed {seed}: {r:?}");
            assert_eq!(r.replayed_steps, r.failed_step - r.rollback_step);
            assert!(r.survivors >= 1);
            assert!(r.attempt >= 1);
            assert_eq!(r.backoff_ns, policy.backoff_ns(r.attempt));
        }
    }
}

// ---------------------------------------------------------------------------
// Hand-built cascades pinning exact record sequences
// ---------------------------------------------------------------------------

fn engaged(units: usize) -> DriverState {
    DriverState::initial(
        units,
        Some(RecoveryPolicy {
            checkpoint_period: 4,
            max_retries: 3,
            backoff_base_ns: 1_000,
        }),
        true,
    )
}

/// Two injected corruptions, a scrub detection, and two quarantined
/// generations on the way to the target: quarantine records first, then one
/// attribution record per outstanding corruption, then the recovery —
/// the exact order the interleaved implementation produced.
#[test]
fn cascade_scrub_detection_with_quarantine_orders_records_exactly() {
    let s0 = engaged(4);
    let events = vec![
        Event::CheckpointSaved { step: 0 },
        Event::StepComputed { step: 0 },
        Event::CorruptionApplied {
            step: 1,
            superstep: 3,
        },
        Event::StepComputed { step: 1 },
        Event::CorruptionApplied {
            step: 2,
            superstep: 6,
        },
        Event::Scrubbed {
            verdict: Some(ScrubVerdict {
                violation: IntegrityViolation::SealMismatch {
                    expected: 1,
                    got: 2,
                },
                detector: IntegrityDetector::SealScrub,
            }),
        },
        Event::RollbackTargetFetched {
            step: Some(0),
            quarantined: 2,
        },
    ];
    let r = replay(s0, &events);
    assert!(r.halt.is_none());
    let ilog = &r.final_state.integrity_log;
    assert_eq!(ilog.len(), 4, "2 quarantines + 2 attributions: {ilog:?}");
    for q in &ilog[..2] {
        assert_eq!(q.kind, CorruptionKind::Checkpoint);
        assert_eq!(q.detector, IntegrityDetector::CheckpointSeal);
        assert_eq!(q.action, IntegrityAction::Quarantine);
    }
    assert_eq!(ilog[2].injected_step, 1, "oldest corruption first");
    assert_eq!(ilog[2].injected_superstep, 3);
    assert_eq!(ilog[3].injected_step, 2);
    assert_eq!(ilog[3].injected_superstep, 6);
    for a in &ilog[2..] {
        assert_eq!(a.kind, CorruptionKind::State);
        assert_eq!(a.detector, IntegrityDetector::SealScrub);
        assert_eq!(a.action, IntegrityAction::Rollback);
        assert_eq!(a.step, 2, "detected at the scrub of step 2");
    }
    let rlog = &r.final_state.recovery_log;
    assert_eq!(rlog.len(), 1);
    assert_eq!(rlog[0].failed_step, 2);
    assert_eq!(rlog[0].rollback_step, 0);
    assert_eq!(rlog[0].survivors, 4, "integrity rollback keeps geometry");
    assert_eq!(rlog[0].attempt, 1);
    assert!(r.final_state.outstanding.is_empty(), "attribution drained");
    assert_eq!(r.final_state.step, 0);
    assert_eq!(r.final_state.last_checkpoint_step, Some(0));
}

/// Rank deaths on every retry: the ladder climbs retransmit → rollback →
/// rollback → rollback, then fail-stops with `RetriesExhausted` after
/// exactly `max_retries` recoveries, shrinking the domain each time.
#[test]
fn cascade_death_storm_exhausts_the_ladder() {
    let mut state = engaged(8);
    let mut effects_seen = Vec::new();
    let kill = |rank: usize| Event::ComputeFailed {
        error: SuperstepError::Failure(SuperstepFailure {
            superstep: 10,
            dead_ranks: vec![rank],
            dropped_messages: 2,
        }),
    };
    let (s, _) = state.apply(Event::CheckpointSaved { step: 0 });
    state = s;
    for k in 0..4 {
        let (s, effs) = state.apply(kill(k));
        state = s;
        effects_seen.extend(effs.clone());
        for eff in effs {
            if let Effect::FetchRollbackTarget { verified_only } = eff {
                assert!(verified_only, "SDC defense is on");
                let (s, effs2) = state.apply(Event::RollbackTargetFetched {
                    step: Some(0),
                    quarantined: 0,
                });
                state = s;
                effects_seen.extend(effs2);
            }
        }
    }
    match &state.halted {
        Some(StopCause::RetriesExhausted { attempts, .. }) => {
            assert_eq!(*attempts, 4, "max_retries=3 gives up on attempt 4")
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(state.recovery_log.len(), 3, "three recoveries before halt");
    let survivors: Vec<usize> = state.recovery_log.iter().map(|r| r.survivors).collect();
    assert_eq!(survivors, vec![7, 6, 5], "one rank lost per recovery");
    assert_eq!(state.units, 5);
    assert!(
        effects_seen
            .iter()
            .any(|e| matches!(e, Effect::Halt(StopCause::RetriesExhausted { .. }))),
        "the halt must surface as an effect"
    );
}

/// Every generation corrupt: the quarantine drains the store and the run
/// fail-stops naming the violation — after logging each quarantined
/// generation and the attribution, exactly as the live path did.
#[test]
fn cascade_store_exhaustion_fail_stops_with_full_forensics() {
    let s0 = engaged(4);
    let events = vec![
        Event::CheckpointSaved { step: 0 },
        Event::StepComputed { step: 0 },
        Event::Scrubbed {
            verdict: Some(ScrubVerdict {
                violation: IntegrityViolation::NonFinite {
                    field: "chemokine",
                    index: 17,
                },
                detector: IntegrityDetector::InvariantAudit,
            }),
        },
        Event::RollbackTargetFetched {
            step: None,
            quarantined: 3,
        },
    ];
    let r = replay(s0, &events);
    match &r.halt {
        Some(StopCause::Integrity { step, violation }) => {
            assert_eq!(*step, 1);
            assert!(matches!(violation, IntegrityViolation::NonFinite { .. }));
        }
        other => panic!("expected Integrity halt, got {other:?}"),
    }
    let ilog = &r.final_state.integrity_log;
    assert_eq!(ilog.len(), 4, "3 quarantines + 1 attribution: {ilog:?}");
    assert!(ilog[..3]
        .iter()
        .all(|q| q.action == IntegrityAction::Quarantine));
    assert_eq!(ilog[3].action, IntegrityAction::Rollback);
    assert_eq!(ilog[3].detector, IntegrityDetector::InvariantAudit);
    assert!(
        r.final_state.recovery_log.is_empty(),
        "no recovery happened"
    );
}

/// A failure before any checkpoint exists is immediately fatal — the core
/// must not even query the store.
#[test]
fn cascade_failure_without_a_checkpoint_is_unrecoverable() {
    let s0 = engaged(4);
    let (s1, effects) = s0.apply(Event::ComputeFailed {
        error: SuperstepError::Failure(SuperstepFailure {
            superstep: 0,
            dead_ranks: vec![2],
            dropped_messages: 0,
        }),
    });
    assert!(matches!(s1.halted, Some(StopCause::Unrecoverable(_))));
    assert_eq!(effects.len(), 1, "halt only, no store query: {effects:?}");
    assert!(matches!(effects[0], Effect::Halt(_)));
    assert!(!effects
        .iter()
        .any(|e| matches!(e, Effect::FetchRollbackTarget { .. })));
}

// ---------------------------------------------------------------------------
// Live-vs-replay equivalence on the real executors
// ---------------------------------------------------------------------------

fn params(seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), 60, 8, seed)
}

fn death(superstep: u64, rank: usize) -> FaultEvent {
    FaultEvent {
        superstep,
        rank,
        kind: FaultKind::RankDeath,
    }
}

/// Replay a recorded run and assert the pure trajectory lands exactly on
/// the live control state and reproduces both record streams bit for bit.
fn assert_replay_matches<S: Simulation + ?Sized>(sim: &S) {
    let initial = sim
        .replay_initial_state()
        .expect("recording was enabled")
        .clone();
    let log = sim.event_log();
    assert!(!log.is_empty(), "a recorded run must have events");
    let r = replay(initial, log);
    let live = sim.control_state().expect("executor has a control plane");
    assert_eq!(
        &r.final_state, live,
        "replayed control state diverged from the live run"
    );
    assert_eq!(
        r.final_state.recovery_log.as_slice(),
        sim.recovery_log(),
        "replayed recovery stream diverged"
    );
}

/// CPU executor, rank death plus state corruption: the recorded event log
/// replays to the live control state with zero executor or store access.
#[test]
fn cpu_event_log_replays_to_the_live_control_state() {
    let plan = FaultPlan::from_events(vec![
        death(90, 1),
        FaultEvent {
            superstep: 60,
            rank: 0,
            kind: FaultKind::StateCorruption { seed: 0xDEAD },
        },
    ]);
    let mut sim =
        CpuSim::new(CpuSimConfig::new(params(3), 4).with_fault_plan(plan)).expect("valid config");
    sim.enable_event_recording();
    sim.run().expect("recovery absorbs both faults");
    assert!(
        !sim.recovery_log().is_empty(),
        "the cascade must actually recover"
    );
    assert_replay_matches(&sim);
    // The replayed integrity stream matches the shell's mirror too.
    let r = replay(
        sim.replay_initial_state().expect("recorded").clone(),
        sim.event_log(),
    );
    assert_eq!(
        r.final_state.integrity_log,
        simcov_repro::simcov_driver::Executor::core(&sim).integrity_log,
        "replayed integrity stream diverged"
    );
}

/// The same equivalence on the GPU executor.
#[test]
fn gpu_event_log_replays_to_the_live_control_state() {
    let plan = FaultPlan::from_events(vec![death(40, 2)]);
    let mut sim = GpuSim::new(
        GpuSimConfig::new(params(5), 4)
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy {
                checkpoint_period: 4,
                ..RecoveryPolicy::default()
            }),
    )
    .expect("valid config");
    sim.enable_event_recording();
    sim.run().expect("recovery absorbs the death");
    assert_eq!(sim.recovery_log().len(), 1);
    assert_replay_matches(&sim);
}

/// A fatal run replays to the matching halt: the event log carries the
/// whole story including the terminal decision.
#[test]
fn fatal_run_replays_to_the_matching_halt() {
    let plan = FaultPlan::from_events((9..60).map(|s| death(s, 0)).collect());
    let mut sim = CpuSim::new(
        CpuSimConfig::new(params(13), 4)
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy {
                checkpoint_period: 1,
                max_retries: 2,
                backoff_base_ns: 1_000,
            }),
    )
    .expect("valid config");
    sim.enable_event_recording();
    let err = sim.run().expect_err("the storm must exhaust retries");
    assert!(matches!(err, SimError::RetriesExhausted { .. }));
    let r = replay(
        sim.replay_initial_state().expect("recorded").clone(),
        sim.event_log(),
    );
    match r.halt {
        Some(StopCause::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("replay must reproduce the halt, got {other:?}"),
    }
    assert_eq!(r.final_state.recovery_log.as_slice(), sim.recovery_log());
}

/// Recording mid-run: the snapshot taken at `enable_event_recording` is the
/// replay origin, so a log recorded from step 20 replays onto the live
/// state without needing the run's prefix.
#[test]
fn recording_started_mid_run_replays_from_its_snapshot() {
    let mut sim = CpuSim::new(CpuSimConfig::new(params(19), 4)).expect("valid config");
    for _ in 0..20 {
        sim.advance_step().expect("healthy step");
    }
    sim.enable_event_recording();
    assert_eq!(
        sim.replay_initial_state().expect("recorded").step,
        20,
        "snapshot taken at the recording point"
    );
    sim.run().expect("healthy run");
    assert_replay_matches(&sim);
}

/// The serial executor records the same event vocabulary (advance/compute/
/// restore) even though its control plane never needs recovery decisions.
#[test]
fn serial_event_log_replays_too() {
    let p = SimParams::test_config(GridDims::new2d(16, 16), 12, 2, 7);
    let mut sim = SerialDriver::new(p).expect("valid config");
    sim.enable_event_recording();
    sim.run().expect("healthy run");
    assert_replay_matches(&sim);
    assert_eq!(
        sim.control_state().expect("serial has a state").step,
        12,
        "pure step counter tracks the run"
    );
}
