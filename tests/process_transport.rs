//! The socket transport under real faults, end to end through the driver.
//!
//! `--transport process` puts one worker process per rank under the BSP
//! exchange: every superstep's coalesced batches round-trip through
//! CRC64-sealed frames over local sockets. These tests pin the two
//! properties that make the transport usable:
//!
//! 1. **Transport invariance** — a healthy socket run is bitwise identical
//!    to the in-process mailbox run (history, world, and the logical
//!    communication counters) on both executors.
//! 2. **Graceful degradation** — a SIGKILLed worker, a garbled frame, a
//!    dropped inbox and a stalled peer are each classified, healed or
//!    escalated through the recovery ladder, and the recovered trajectory
//!    is bitwise identical to the failure-free run.
//!
//! Workers are forked (not exec'd — the CLI covers that spawn mode), so a
//! `KillWorker` fault is a real `SIGKILL(2)` of a real process and a
//! "closed socket" is a real EOF, not a simulated flag.

use simcov_repro::pgas::{ProcessTransportConfig, TransportMode, WireFaultPlan};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::{RecoveryPolicy, Simulation};
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn params(seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), 40, 8, seed)
}

/// Forked workers with deadlines short enough that a stall test finishes
/// quickly but long enough that a loaded CI machine never trips them.
fn transport(faults: WireFaultPlan) -> TransportMode {
    TransportMode::Process(ProcessTransportConfig::forked().with_wire_faults(faults))
}

fn recovery() -> RecoveryPolicy {
    RecoveryPolicy {
        checkpoint_period: 4,
        ..RecoveryPolicy::default()
    }
}

#[test]
fn healthy_socket_run_is_bitwise_identical_to_in_process_cpu() {
    let mut inproc = CpuSim::new(CpuSimConfig::new(params(11), 4)).expect("valid config");
    inproc.run().expect("healthy run");

    let cfg = CpuSimConfig::new(params(11), 4).with_transport(transport(WireFaultPlan::none()));
    let mut socketed = CpuSim::new(cfg).expect("transport spawns");
    socketed.run().expect("healthy socket run");

    assert_eq!(inproc.history(), socketed.history(), "time series diverged");
    assert!(
        inproc
            .gather_world()
            .first_difference(&socketed.gather_world())
            .is_none(),
        "world diverged across transports"
    );
    // The logical volume metering is transport-invariant; only the wire
    // overhead counters know a socket was involved.
    assert_eq!(inproc.comm_counters(), socketed.comm_counters());
    assert!(inproc.transport_counters().is_none());
    let wire = socketed.transport_counters().expect("transport attached");
    assert!(wire.frames_sent > 0, "frames crossed the wire");
    assert_eq!(wire.frames_received, wire.frames_sent, "lossless exchange");
    assert_eq!(wire.wire_retransmits, 0);
    assert_eq!(wire.peers_closed + wire.peers_timed_out, 0);
}

#[test]
fn healthy_socket_run_is_bitwise_identical_to_in_process_gpu() {
    let mut inproc = GpuSim::new(GpuSimConfig::new(params(13), 4)).expect("valid config");
    inproc.run().expect("healthy run");

    let cfg = GpuSimConfig::new(params(13), 4).with_transport(transport(WireFaultPlan::none()));
    let mut socketed = GpuSim::new(cfg).expect("transport spawns");
    socketed.run().expect("healthy socket run");

    assert_eq!(inproc.history(), socketed.history(), "time series diverged");
    assert!(
        inproc
            .gather_world()
            .first_difference(&socketed.gather_world())
            .is_none(),
        "world diverged across transports"
    );
    assert_eq!(inproc.comm_counters(), socketed.comm_counters());
    let wire = socketed.transport_counters().expect("transport attached");
    assert!(wire.frames_sent > 0);
    assert_eq!(wire.frames_received, wire.frames_sent);
}

/// A worker SIGKILLed mid-run: the barrier sees the closed socket, the
/// failure takes the rollback → elastic re-partition ladder, the transport
/// respawns a worker set for the survivors, and the recovered trajectory
/// is bitwise identical to the failure-free run.
#[test]
fn sigkilled_worker_recovers_bitwise_identical_cpu() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(17), 4)).expect("valid config");
    clean.run().expect("no faults");

    // CPU: 3 supersteps per step — superstep 30 is mid step 10.
    let cfg = CpuSimConfig::new(params(17), 4)
        .with_transport(transport(WireFaultPlan::none().kill_worker(30, 1)))
        .with_recovery(recovery());
    let mut faulty = CpuSim::new(cfg).expect("transport spawns");
    faulty.run().expect("recovery must absorb the crash");

    let log = faulty.recovery_log();
    assert_eq!(log.len(), 1, "exactly one recovery");
    assert_eq!(log[0].dead_ranks, vec![1]);
    assert_eq!(faulty.n_units(), 3, "domain shrank to the survivors");
    let wire = faulty.transport_counters().expect("transport attached");
    assert!(wire.workers_respawned >= 3, "survivor workers respawned");
    assert_eq!(wire.degraded, 0, "never fell back to in-process");

    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after recovery"
    );
}

/// The same crash on the GPU executor (2 supersteps per step).
#[test]
fn sigkilled_worker_recovers_bitwise_identical_gpu() {
    let mut clean = GpuSim::new(GpuSimConfig::new(params(19), 4)).expect("valid config");
    clean.run().expect("no faults");

    let cfg = GpuSimConfig::new(params(19), 4)
        .with_transport(transport(WireFaultPlan::none().kill_worker(20, 2)))
        .with_recovery(recovery());
    let mut faulty = GpuSim::new(cfg).expect("transport spawns");
    faulty.run().expect("recovery must absorb the crash");

    assert_eq!(faulty.recovery_log().len(), 1);
    assert_eq!(faulty.n_units(), 3);
    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after recovery"
    );
}

/// One garbled inbox frame: the CRC rejects it, the barrier re-requests the
/// retained frames, and the run completes with no recovery at all — the
/// heal is invisible outside the wire counters.
#[test]
fn garbled_frame_heals_in_barrier_without_recovery() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(23), 4)).expect("valid config");
    clean.run().expect("no faults");

    let cfg = CpuSimConfig::new(params(23), 4)
        .with_transport(transport(WireFaultPlan::none().garble(31, 2, 77, false)));
    let mut healed = CpuSim::new(cfg).expect("transport spawns");
    healed.run().expect("garble heals in-barrier");

    assert!(healed.recovery_log().is_empty(), "no rollback was needed");
    let wire = healed.transport_counters().expect("transport attached");
    assert!(wire.wire_retransmits >= 1, "the heal was a real retransmit");
    // The wire heal never pollutes the logical corruption counters.
    assert_eq!(healed.comm_counters().corrupt_batches, 0);
    assert_eq!(clean.history(), healed.history(), "time series diverged");
}

/// A dropped inbox reply heals the same way: re-request, replay, identical.
#[test]
fn dropped_inbox_heals_in_barrier_without_recovery() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(29), 4)).expect("valid config");
    clean.run().expect("no faults");

    let cfg = CpuSimConfig::new(params(29), 4)
        .with_transport(transport(WireFaultPlan::none().drop_inbox(40, 0)));
    let mut healed = CpuSim::new(cfg).expect("transport spawns");
    healed.run().expect("drop heals in-barrier");

    assert!(healed.recovery_log().is_empty());
    let wire = healed.transport_counters().expect("transport attached");
    assert!(wire.wire_retransmits >= 1);
    assert_eq!(clean.history(), healed.history(), "time series diverged");
}

/// A peer stalled past the full deadline × retry budget is classified as
/// timed out — not hung-forever — and the driver recovers exactly as for a
/// crash, bitwise identical to the failure-free run.
#[test]
fn stalled_peer_past_deadline_recovers_bitwise_identical() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(31), 4)).expect("valid config");
    clean.run().expect("no faults");

    // 60 ms read deadline, 2 retries, 1 s stall: the peer cannot answer
    // inside the budget and must classify as timed out.
    let tcfg = ProcessTransportConfig::forked()
        .with_deadlines(60_000_000, 1_000_000_000)
        .with_retry(2, 1_000_000)
        .with_wire_faults(WireFaultPlan::none().stall(33, 3, 1_000_000_000));
    let cfg = CpuSimConfig::new(params(31), 4)
        .with_transport(TransportMode::Process(tcfg))
        .with_recovery(recovery());
    let mut faulty = CpuSim::new(cfg).expect("transport spawns");
    faulty.run().expect("recovery must absorb the timeout");

    assert_eq!(faulty.recovery_log().len(), 1, "timeout took the ladder");
    assert_eq!(faulty.recovery_log()[0].dead_ranks, vec![3]);
    let wire = faulty.transport_counters().expect("transport attached");
    assert!(
        wire.deadline_retries >= 1,
        "the deadline was really retried"
    );
    assert!(
        wire.peers_timed_out >= 1,
        "classified as timeout, not crash"
    );
    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after recovery"
    );
}
