//! Property-based tests over randomized configurations: model invariants
//! that must hold for *every* parameter draw, plus cross-executor equality
//! as a property.

use proptest::prelude::*;
use simcov_repro::simcov_core::epithelial::EpiState;
use simcov_repro::simcov_core::foi::FoiPattern;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::serial::SerialSim;
use simcov_repro::simcov_core::world::World;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

/// A randomized small-but-meaningful configuration.
fn arb_params() -> impl Strategy<Value = SimParams> {
    (
        12u32..28,
        12u32..28,
        30u64..90,
        0u32..5,
        any::<u64>(),
        0.0f64..0.01,
        0.0f32..0.5,
        0.0f32..0.05,
    )
        .prop_map(|(x, y, steps, foi, seed, infectivity, diffusion, clearance)| {
            let mut p = SimParams::test_config(GridDims::new2d(x, y), steps, foi, seed);
            p.infectivity = infectivity;
            p.virion_diffusion = diffusion;
            p.virion_clearance = clearance;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn serial_invariants_hold(p in arb_params()) {
        let mut sim = SerialSim::new(p.clone());
        let nvox = p.dims.nvoxels() as u64;
        let n_airway = sim.world.count_epi(EpiState::Airway);
        for _ in 0..p.steps {
            sim.advance_step();
            let s = *sim.last_stats().unwrap();
            // Epithelial conservation: states partition the tissue.
            prop_assert_eq!(
                s.epi_healthy + s.epi_incubating + s.epi_expressing
                    + s.epi_apoptotic + s.epi_dead + n_airway,
                nvox
            );
            // Concentration bounds.
            prop_assert!(s.virions >= 0.0);
            prop_assert!(s.chemokine >= 0.0);
            prop_assert!(s.chemokine <= nvox as f64, "chemokine capped at 1/voxel");
            // Tissue T cells can never exceed voxels (one per voxel).
            prop_assert!(s.tcells_tissue <= nvox);
            // Per-voxel invariants.
            for v in 0..p.dims.nvoxels() {
                let c = sim.world.chemokine.get(v);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(sim.world.virions.get(v) >= 0.0);
                prop_assert!(!sim.world.tcells[v].is_fresh(), "fresh cleared at step end");
            }
        }
    }

    #[test]
    fn executors_agree_on_random_configs(p in arb_params(), ranks in 2usize..6, devices in 2usize..6) {
        let world = World::seeded(&p, FoiPattern::UniformLattice);
        let mut serial = SerialSim::from_world(p.clone(), world.clone());
        serial.run();
        let mut cpu = CpuSim::from_world(CpuSimConfig::new(p.clone(), ranks), world.clone());
        cpu.run();
        let mut gpu = GpuSim::from_world(
            GpuSimConfig::new(p, devices).with_variant(GpuVariant::Combined),
            world,
        );
        gpu.run();
        prop_assert!(serial.world.first_difference(&cpu.gather_world()).is_none());
        prop_assert!(serial.world.first_difference(&gpu.gather_world()).is_none());
    }

    #[test]
    fn dead_cells_never_resurrect(p in arb_params()) {
        let mut sim = SerialSim::new(p.clone());
        let mut dead_prev = 0u64;
        for _ in 0..p.steps {
            sim.advance_step();
            let dead = sim.last_stats().unwrap().epi_dead;
            prop_assert!(dead >= dead_prev, "dead count must be monotone");
            dead_prev = dead;
        }
    }

    #[test]
    fn quiescent_stays_quiescent(
        x in 12u32..24, y in 12u32..24, steps in 20u64..60, seed in any::<u64>()
    ) {
        // No FOI + no T-cell generation ⇒ nothing ever happens, and the
        // active-list executors must do (almost) no work.
        let mut p = SimParams::test_config(GridDims::new2d(x, y), steps, 0, seed);
        p.tcell_generation_rate = 0.0;
        let mut cpu = CpuSim::new(CpuSimConfig::new(p.clone(), 4));
        cpu.run();
        let s = *cpu.last_stats().unwrap();
        prop_assert_eq!(s.epi_healthy, p.dims.nvoxels() as u64);
        prop_assert_eq!(s.virions, 0.0);
        prop_assert_eq!(cpu.total_counters().update.elements, 0, "no active voxels, no work");
    }
}
