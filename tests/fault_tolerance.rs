//! Fault-injection and recovery tests for the elastic BSP runtime: injected
//! rank deaths and message losses must be detected, rolled back to the last
//! checkpoint, re-partitioned across the survivors and replayed — and the
//! recovered trajectory must be **bitwise identical** to the failure-free
//! run (exact summation makes per-step statistics independent of the
//! partitioning, so an elastic shrink is invisible in the results).

use simcov_repro::pgas::{FaultEvent, FaultKind, FaultPlan, FaultRates};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::{RecoveryPolicy, SerialDriver, SimError, Simulation};
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn params(seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), 60, 8, seed)
}

fn death(superstep: u64, rank: usize) -> FaultEvent {
    FaultEvent {
        superstep,
        rank,
        kind: FaultKind::RankDeath,
    }
}

/// Rank death mid-run on the CPU executor: the driver rolls back, shrinks
/// to the survivors and replays; the final world and the whole per-step
/// time series are bitwise identical to the failure-free run.
#[test]
fn cpu_rank_death_recovery_is_bitwise_identical() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(3), 4)).expect("valid config");
    clean.run().expect("no faults");
    assert!(clean.recovery_log().is_empty());

    // The CPU executor runs 3 supersteps per step: superstep 90 = step 30.
    let plan = FaultPlan::from_events(vec![death(90, 1)]);
    let mut faulty =
        CpuSim::new(CpuSimConfig::new(params(3), 4).with_fault_plan(plan)).expect("valid config");
    faulty.run().expect("recovery must absorb the death");

    let log = faulty.recovery_log();
    assert_eq!(log.len(), 1, "exactly one recovery");
    assert_eq!(log[0].dead_ranks, vec![1]);
    assert_eq!(log[0].survivors, 3);
    assert!(log[0].replayed_steps > 0, "rollback must replay something");
    assert_eq!(faulty.n_units(), 3, "domain shrank to the survivors");

    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after recovery"
    );
}

/// The same property on the GPU executor (2 supersteps per step).
#[test]
fn gpu_device_death_recovery_is_bitwise_identical() {
    let mut clean = GpuSim::new(GpuSimConfig::new(params(5), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![death(40, 2)]);
    let mut faulty = GpuSim::new(
        GpuSimConfig::new(params(5), 4)
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy {
                checkpoint_period: 4,
                ..RecoveryPolicy::default()
            }),
    )
    .expect("valid config");
    faulty.run().expect("recovery must absorb the death");

    assert_eq!(faulty.recovery_log().len(), 1);
    assert_eq!(faulty.n_units(), 3);
    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after recovery"
    );
}

/// Message loss (no dead ranks): the failed superstep's messages are lost in
/// flight, the driver rolls back and replays over the *same* rank count.
#[test]
fn message_drop_triggers_rollback_without_shrink() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(7), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![FaultEvent {
        superstep: 95, // a state-exchange superstep mid-infection: halos flow
        rank: 0,
        kind: FaultKind::MessageDrop,
    }]);
    let mut faulty =
        CpuSim::new(CpuSimConfig::new(params(7), 4).with_fault_plan(plan)).expect("valid config");
    faulty.run().expect("recovery must absorb the drop");

    let log = faulty.recovery_log();
    assert_eq!(log.len(), 1, "the drop must have been detected");
    assert!(log[0].dead_ranks.is_empty());
    assert!(log[0].dropped_messages > 0);
    assert_eq!(
        log[0].survivors, 4,
        "message loss does not shrink the domain"
    );
    assert_eq!(faulty.n_units(), 4);
    assert_eq!(clean.history(), faulty.history(), "time series diverged");
}

/// Duplicated deliveries are suppressed by the exactly-once layer and slow
/// ranks are metered, neither perturbs the trajectory nor triggers recovery.
#[test]
fn duplicates_and_stalls_are_metered_not_fatal() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(11), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![
        FaultEvent {
            superstep: 95, // state-exchange superstep: halo traffic to copy
            rank: 2,
            kind: FaultKind::MessageDuplicate,
        },
        FaultEvent {
            superstep: 120,
            rank: 1,
            kind: FaultKind::SlowRank { stall_ns: 250_000 },
        },
    ]);
    let mut sim =
        CpuSim::new(CpuSimConfig::new(params(11), 4).with_fault_plan(plan)).expect("valid config");
    sim.run().expect("benign faults must not fail the run");

    assert!(sim.recovery_log().is_empty(), "no recovery needed");
    let comm = sim.comm_counters();
    assert!(comm.duplicates_suppressed > 0, "duplicates were suppressed");
    assert_eq!(comm.stalls, 1);
    assert_eq!(comm.stall_ns, 250_000);
    assert_eq!(clean.history(), sim.history(), "observability-only faults");
}

/// A failure storm at one step exhausts the retry budget and surfaces as
/// [`SimError::RetriesExhausted`] instead of looping forever.
#[test]
fn unrelenting_failures_exhaust_retries() {
    // Kill a rank at every superstep from 9 on: each retry fails again.
    let plan = FaultPlan::from_events((9..60).map(|s| death(s, 0)).collect());
    let mut sim = CpuSim::new(
        CpuSimConfig::new(params(13), 4)
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy {
                checkpoint_period: 1,
                max_retries: 2,
                backoff_base_ns: 1_000,
            }),
    )
    .expect("valid config");
    match sim.run() {
        Err(SimError::RetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 3, "max_retries=2 gives up on attempt 3");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(
        sim.recovery_log().len(),
        2,
        "two recoveries before giving up"
    );
}

/// Without recovery engaged (no plan, no policy) a failure is fatal — and a
/// seeded plan engages the default policy automatically.
#[test]
fn seeded_plans_engage_recovery_by_default() {
    let rates = FaultRates {
        death: 0.002,
        ..FaultRates::default()
    };
    // 60 steps * 3 supersteps on 4 ranks at 0.2% — a couple of deaths.
    let plan = FaultPlan::seeded(0xFA17, &rates, 4, 180);
    let n_deaths = plan.events().len();
    assert!(n_deaths > 0, "seed must schedule at least one death");

    let mut clean = CpuSim::new(CpuSimConfig::new(params(17), 4)).expect("valid config");
    clean.run().expect("no faults");
    let mut sim =
        CpuSim::new(CpuSimConfig::new(params(17), 4).with_fault_plan(plan)).expect("valid config");
    sim.run().expect("default recovery must engage");
    assert!(!sim.recovery_log().is_empty());
    assert_eq!(clean.history(), sim.history(), "time series diverged");
}

/// Checkpoint/restore through the trait: restoring rewinds the trajectory
/// and a replay from the checkpoint reproduces the original run exactly.
#[test]
fn checkpoint_restore_replays_identically() {
    let mut sim = CpuSim::new(CpuSimConfig::new(params(19), 4)).expect("valid config");
    for _ in 0..20 {
        sim.advance_step().expect("healthy step");
    }
    let cp = sim.checkpoint();
    assert_eq!(cp.step, 20);
    sim.run().expect("healthy run");
    let full_history = sim.history().clone();
    let full_world = sim.gather_world();

    sim.restore(&cp).expect("restore");
    assert_eq!(sim.step(), 20, "restore rewinds the step counter");
    sim.run().expect("healthy replay");
    assert_eq!(full_history, *sim.history(), "replay diverged");
    assert!(full_world.first_difference(&sim.gather_world()).is_none());
}

/// Restoring a checkpoint from a different grid is a typed error.
#[test]
fn restore_rejects_mismatched_dims() {
    let other = SerialDriver::new(SimParams::test_config(GridDims::new2d(16, 16), 10, 1, 1))
        .expect("valid config");
    let cp = other.checkpoint();
    let mut sim = CpuSim::new(CpuSimConfig::new(params(23), 4)).expect("valid config");
    match sim.restore(&cp) {
        Err(SimError::Restore(msg)) => assert!(msg.contains("dims"), "got: {msg}"),
        other => panic!("expected SimError::Restore, got {other:?}"),
    }
}

/// The unified driver API: all three executors behind `Box<dyn Simulation>`
/// produce the identical trajectory, and the trait surface (name, units,
/// history, gather) works through the object.
#[test]
fn trait_objects_run_all_executors_identically() {
    let p = params(29);
    let mut sims: Vec<Box<dyn Simulation>> = vec![
        Box::new(SerialDriver::new(p.clone()).expect("valid config")),
        Box::new(CpuSim::new(CpuSimConfig::new(p.clone(), 3)).expect("valid config")),
        Box::new(GpuSim::new(GpuSimConfig::new(p, 4)).expect("valid config")),
    ];
    for sim in &mut sims {
        sim.run().expect("healthy run");
    }
    assert_eq!(sims[0].name(), "serial");
    assert_eq!(sims[1].name(), "cpu");
    assert_eq!(sims[2].name(), "gpu");
    assert_eq!(sims[0].n_units(), 1);
    assert_eq!(sims[1].n_units(), 3);
    assert_eq!(sims[2].n_units(), 4);
    let reference = sims[0].gather_world();
    for sim in &sims[1..] {
        assert_eq!(
            sims[0].history(),
            sim.history(),
            "{}: time series diverged",
            sim.name()
        );
        assert!(
            reference.first_difference(&sim.gather_world()).is_none(),
            "{}: world diverged",
            sim.name()
        );
    }
}

/// Edge case: the rank dies on the exact superstep at which the checkpoint
/// for that very step was taken. The rollback target is the checkpoint just
/// written, so the replay is minimal — and still bitwise identical.
#[test]
fn death_on_the_exact_checkpoint_superstep_recovers() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(31), 4)).expect("valid config");
    clean.run().expect("no faults");

    // checkpoint_period = 8 ⇒ a checkpoint lands before step 8; the CPU
    // executor's superstep 24 is the first superstep of that same step.
    let plan = FaultPlan::from_events(vec![death(24, 1)]);
    let mut faulty = CpuSim::new(
        CpuSimConfig::new(params(31), 4)
            .with_fault_plan(plan)
            .with_recovery(RecoveryPolicy {
                checkpoint_period: 8,
                ..RecoveryPolicy::default()
            }),
    )
    .expect("valid config");
    faulty.run().expect("recovery must absorb the death");

    let log = faulty.recovery_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].dead_ranks, vec![1]);
    assert!(
        log[0].replayed_steps <= 1,
        "fault on the checkpoint step itself must replay at most that step, \
         got {}",
        log[0].replayed_steps
    );
    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after recovery"
    );
}

/// Edge case: two ranks die in the *same* superstep. Detection must gather
/// both into one recovery (not two), the domain shrinks straight to the two
/// survivors, and the trajectory stays bitwise identical.
#[test]
fn two_ranks_dying_in_one_superstep_recover_together() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(37), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![death(90, 1), death(90, 3)]);
    let mut faulty =
        CpuSim::new(CpuSimConfig::new(params(37), 4).with_fault_plan(plan)).expect("valid config");
    faulty.run().expect("recovery must absorb both deaths");

    let log = faulty.recovery_log();
    assert_eq!(log.len(), 1, "one superstep, one recovery");
    assert_eq!(log[0].dead_ranks, vec![1, 3]);
    assert_eq!(log[0].survivors, 2);
    assert_eq!(faulty.n_units(), 2);
    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after recovery"
    );
}

/// Edge case: every rank but one dies. The domain collapses to a single
/// unit (the elastic lower bound) and the lone survivor still reproduces
/// the failure-free trajectory bit for bit — on both executors.
#[test]
fn recovery_with_a_single_survivor_is_bitwise_identical() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(41), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::from_events(vec![death(90, 0), death(90, 1), death(90, 2)]);
    let mut faulty =
        CpuSim::new(CpuSimConfig::new(params(41), 4).with_fault_plan(plan)).expect("valid config");
    faulty.run().expect("the lone survivor must finish the run");

    let log = faulty.recovery_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].dead_ranks, vec![0, 1, 2]);
    assert_eq!(log[0].survivors, 1);
    assert_eq!(faulty.n_units(), 1);
    assert_eq!(clean.history(), faulty.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&faulty.gather_world())
            .is_none(),
        "world diverged after recovery"
    );

    // The same collapse on the GPU executor (superstep 60 = step 30 there).
    let mut gclean = GpuSim::new(GpuSimConfig::new(params(43), 4)).expect("valid config");
    gclean.run().expect("no faults");
    let gplan = FaultPlan::from_events(vec![death(60, 1), death(60, 2), death(60, 3)]);
    let mut gfaulty =
        GpuSim::new(GpuSimConfig::new(params(43), 4).with_fault_plan(gplan)).expect("valid config");
    gfaulty
        .run()
        .expect("the lone survivor must finish the run");
    assert_eq!(gfaulty.n_units(), 1);
    assert_eq!(
        gclean.history(),
        gfaulty.history(),
        "GPU time series diverged"
    );
}
