//! Determinism and failure-injection tests for the runtime layers: results
//! must be independent of thread scheduling, message arrival order, and
//! repeated execution — the properties that make the §4.1 correctness
//! comparison meaningful at all.

use simcov_repro::pgas::{Bsp, WorkPool};
use simcov_repro::simcov_core::foi::FoiPattern;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::world::World;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

#[test]
fn repeated_runs_are_bitwise_identical() {
    let p = SimParams::test_config(GridDims::new2d(28, 28), 80, 3, 5);
    let run = || {
        let mut gpu = GpuSim::new(GpuSimConfig::new(p.clone(), 4)).expect("valid config");
        gpu.run().expect("healthy run");
        gpu.gather_world()
    };
    let a = run();
    let b = run();
    assert!(a.first_difference(&b).is_none());
}

#[test]
fn rank_count_does_not_change_results() {
    let p = SimParams::test_config(GridDims::new2d(30, 30), 80, 3, 6);
    let world = World::seeded(&p, FoiPattern::UniformLattice);
    let mut worlds = Vec::new();
    for ranks in [1usize, 2, 3, 6, 9] {
        let mut cpu = CpuSim::from_world(CpuSimConfig::new(p.clone(), ranks), world.clone())
            .expect("valid config");
        cpu.run().expect("healthy run");
        worlds.push(cpu.gather_world());
    }
    for w in &worlds[1..] {
        assert!(worlds[0].first_difference(w).is_none());
    }
}

#[test]
fn device_count_does_not_change_results() {
    let p = SimParams::test_config(GridDims::new2d(30, 30), 80, 3, 7);
    let world = World::seeded(&p, FoiPattern::UniformLattice);
    let mut worlds = Vec::new();
    for devices in [1usize, 2, 4, 9] {
        let mut gpu = GpuSim::from_world(GpuSimConfig::new(p.clone(), devices), world.clone())
            .expect("valid config");
        gpu.run().expect("healthy run");
        worlds.push(gpu.gather_world());
    }
    for w in &worlds[1..] {
        assert!(worlds[0].first_difference(w).is_none());
    }
}

#[test]
fn bsp_results_independent_of_pool_size() {
    // The runtime canonicalizes message delivery; rank results must not
    // depend on how many worker threads execute the supersteps.
    let run = |threads: usize| -> Vec<Vec<u64>> {
        let pool = WorkPool::new(threads);
        let mut bsp: Bsp<u64> = Bsp::new(8);
        let mut states: Vec<Vec<u64>> = vec![Vec::new(); 8];
        // Two rounds of all-to-all with data-dependent payloads.
        for round in 0..2u64 {
            bsp.superstep(&pool, &mut states, |rank, s, inbox, out| {
                let got: u64 = inbox.iter().sum();
                s.push(got);
                for d in 0..8 {
                    if d != rank {
                        out.send(d, got + rank as u64 * 10 + round);
                    }
                }
            });
        }
        states
    };
    let a = run(0);
    let b = run(2);
    let c = run(7);
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn message_storm_does_not_reorder_per_source() {
    // Even under a message storm (many messages per pair), each inbox
    // remains ordered by (source rank, emission order).
    let pool = WorkPool::new(3);
    let mut bsp: Bsp<(u64, u64)> = Bsp::new(5);
    let mut states = vec![(); 5];
    bsp.superstep(&pool, &mut states, |rank, _s, _i, out| {
        for k in 0..100u64 {
            out.send(0, (rank as u64, k));
        }
    });
    bsp.superstep(&pool, &mut states, |rank, _s, inbox, _out| {
        if rank == 0 {
            assert_eq!(inbox.len(), 500);
            let mut expect = Vec::new();
            for src in 0..5u64 {
                for k in 0..100u64 {
                    expect.push((src, k));
                }
            }
            assert_eq!(inbox, expect.as_slice());
        }
    });
}

#[test]
fn partial_run_equals_full_run_prefix() {
    // advance_step must be incremental: stopping and inspecting mid-run
    // does not perturb the trajectory.
    let p = SimParams::test_config(GridDims::new2d(24, 24), 60, 2, 8);
    let mut full = GpuSim::new(GpuSimConfig::new(p.clone(), 4)).expect("valid config");
    full.run().expect("healthy run");
    let mut stepped = GpuSim::new(GpuSimConfig::new(p, 4)).expect("valid config");
    for _ in 0..30 {
        stepped.advance_step().expect("healthy step");
    }
    let _ = stepped.gather_world(); // inspect mid-run
    for _ in 30..60 {
        stepped.advance_step().expect("healthy step");
    }
    assert!(full
        .gather_world()
        .first_difference(&stepped.gather_world())
        .is_none());
    assert_eq!(full.history(), stepped.history());
}
