//! Sweep job-server integration gates: kill-and-resume bitwise identity,
//! dead-lettering with replayable event logs, multi-tenant isolation on a
//! shared work pool, and the 100-job work-stealing sweep.

use std::fs;
use std::path::PathBuf;

use simcov_repro::pgas::fault::FaultRates;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_sweep::{
    job_paths, ExecutorKind, FaultSpec, JobSpec, JobStatus, RecoverySpec, RunSpec, SweepConfig,
    SweepServer,
};

/// A process-unique scratch root, wiped on entry so re-runs start clean.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simcov_sweep_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn small_run(executor: ExecutorKind, seed: u64) -> RunSpec {
    RunSpec::test(executor, GridDims::new2d(24, 24), 30, 2, seed).with_units(3)
}

/// A killed-mid-run job, resubmitted, resumes from its durable checkpoint
/// and produces a CSV byte-identical to a never-interrupted run.
#[test]
fn interrupted_job_resumes_bitwise_identical() {
    // Reference: the same job start-to-finish in its own root.
    let ref_dir = scratch("resume_ref");
    let results = {
        let srv = SweepServer::start(SweepConfig::new(&ref_dir)).expect("start");
        srv.submit(JobSpec::new("cell", small_run(ExecutorKind::Cpu, 42)).with_persist_every(7));
        srv.join()
    };
    assert!(results[0].1.is_completed(), "reference run completes");
    let (ref_csv, _, _) = job_paths(&ref_dir, "cell");
    let want = fs::read(&ref_csv).expect("reference CSV");

    // Crash: same job, killed before step 13; only checkpoints survive.
    let dir = scratch("resume");
    let job = JobSpec::new("cell", small_run(ExecutorKind::Cpu, 42))
        .with_persist_every(7)
        .with_halt_after(13);
    {
        let srv = SweepServer::start(SweepConfig::new(&dir)).expect("start");
        srv.submit(job.clone());
        let results = srv.join();
        match &results[0].1 {
            JobStatus::Interrupted { at_step } => assert_eq!(*at_step, 13),
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }
    let (csv, _, _) = job_paths(&dir, "cell");
    assert!(!csv.exists(), "no CSV before completion");

    // Resume: resubmit the identical job to a fresh server on the same
    // roots. The halt is ignored on resume; the job runs to completion.
    let resumed = {
        let srv = SweepServer::start(SweepConfig::new(&dir)).expect("start");
        srv.submit(job);
        srv.join()
    };
    let report = resumed[0].1.report().expect("resumed job completes");
    let from = report.resumed_from.expect("job actually resumed");
    assert!(
        (7..13).contains(&from),
        "resumed from a persisted step, got {from}"
    );
    assert_eq!(
        fs::read(&csv).expect("resumed CSV"),
        want,
        "resumed trajectory must be byte-identical to the uninterrupted run"
    );

    // Idempotence: resubmitting a finished job is skipped via its marker.
    let again = {
        let srv = SweepServer::start(SweepConfig::new(&dir)).expect("start");
        srv.submit(JobSpec::new("cell", small_run(ExecutorKind::Cpu, 42)));
        srv.join()
    };
    assert!(matches!(again[0].1, JobStatus::Skipped));
}

/// A job whose recovery ladder is exhausted lands in the DLQ with its
/// recorded event log; replaying the log re-derives the terminal halt.
#[test]
fn ladder_exhaustion_dead_letters_with_replayable_log() {
    let dir = scratch("dlq");
    let run = small_run(ExecutorKind::Cpu, 5)
        .with_fault(FaultSpec {
            seed: 0xDEAD,
            rates: FaultRates {
                death: 1.0, // every rank dies every superstep: unrecoverable
                ..FaultRates::default()
            },
        })
        .with_recovery(RecoverySpec {
            checkpoint_period: 4,
            max_retries: 2,
            backoff_base_ns: 1_000,
        });
    let srv = SweepServer::start(SweepConfig::new(&dir)).expect("start");
    srv.submit(JobSpec::new("doomed", run));
    srv.wait_idle();
    let letters = srv.dead_letters();
    let results = srv.join();

    assert!(results[0].1.is_dead(), "job must dead-letter");
    assert_eq!(letters.len(), 1);
    let letter = &letters[0];
    assert!(!letter.error.is_empty());
    assert!(!letter.events.is_empty(), "event log was recorded");
    let replayed = letter.replay();
    assert!(
        replayed.halt.is_some(),
        "replaying the recorded log re-derives the terminal halt"
    );

    let (_, _, dlq) = job_paths(&dir, "doomed");
    let entry = fs::read_to_string(&dlq).expect("DLQ file written");
    assert!(entry.contains("\"dead_letter\""));
    assert!(entry.contains("\"doomed\""));
}

/// Two concurrent jobs interleaving on one shared work pool produce exactly
/// the trajectories each produces alone: no cross-contamination.
#[test]
fn concurrent_jobs_on_shared_pool_do_not_cross_contaminate() {
    // Baselines, one job at a time.
    let solo_dir = scratch("iso_solo");
    {
        let srv = SweepServer::start(SweepConfig::new(&solo_dir).with_workers(1)).expect("start");
        srv.submit(JobSpec::new("a", small_run(ExecutorKind::Cpu, 1)));
        srv.submit(JobSpec::new("b", small_run(ExecutorKind::Gpu, 2)));
        srv.join();
    }

    // The same two jobs concurrently, sharing a threaded pool.
    let dir = scratch("iso");
    {
        let cfg = SweepConfig::new(&dir).with_workers(2).with_pool_threads(2);
        let srv = SweepServer::start(cfg).expect("start");
        srv.submit(JobSpec::new("a", small_run(ExecutorKind::Cpu, 1)));
        srv.submit(JobSpec::new("b", small_run(ExecutorKind::Gpu, 2)));
        let results = srv.join();
        assert!(results.iter().all(|(_, s)| s.is_completed()));
    }

    for name in ["a", "b"] {
        let (solo_csv, _, _) = job_paths(&solo_dir, name);
        let (conc_csv, _, _) = job_paths(&dir, name);
        assert_eq!(
            fs::read(&solo_csv).unwrap(),
            fs::read(&conc_csv).unwrap(),
            "job {name:?} must be unaffected by its concurrent neighbor"
        );
    }
}

/// A 100-job seeded sweep drains across the work-stealing pool, streaming
/// per-job JSON records, every job completing.
#[test]
fn hundred_job_sweep_completes_with_streamed_records() {
    let dir = scratch("hundred");
    let cfg = SweepConfig::new(&dir).with_workers(4);
    let srv = SweepServer::start(cfg).expect("start");
    for i in 0..100u64 {
        let run = RunSpec::test(ExecutorKind::Cpu, GridDims::new2d(16, 16), 8, 1, i).with_units(2);
        srv.submit(JobSpec::new(format!("job{i:03}"), run));
    }
    let results = srv.join();
    assert_eq!(results.len(), 100);
    assert!(results.iter().all(|(_, s)| s.is_completed()));

    for i in [0u64, 57, 99] {
        let (csv, jsonl, _) = job_paths(&dir, &format!("job{i:03}"));
        assert!(csv.exists());
        let stream = fs::read_to_string(&jsonl).unwrap();
        let lines: Vec<&str> = stream.lines().collect();
        assert!(
            lines[0].contains("\"record\":\"job\""),
            "header line first: {:?}",
            lines[0]
        );
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"record\":\"step\""))
                .count(),
            8,
            "one streamed record per step"
        );
    }
}
