//! Scientific-behavior tests: the model-level claims SIMCoV is built on
//! (§2.2) must emerge from the implementation — spatial spread, the effect
//! of FOI distribution, the immune response, structure blocking spread.

use simcov_repro::simcov_core::epithelial::EpiState;
use simcov_repro::simcov_core::foi::FoiPattern;
use simcov_repro::simcov_core::grid::{Coord, GridDims};
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_core::serial::SerialSim;
use simcov_repro::simcov_core::stats::Metric;
use simcov_repro::simcov_core::world::World;

#[test]
fn infection_spreads_spatially_from_focus() {
    // Infected cells must appear at growing distances from the focus.
    let dims = GridDims::new2d(41, 41);
    let p = SimParams::test_config(dims, 200, 1, 3);
    let mut sim = SerialSim::new(p);
    let center = Coord::new(20, 20, 0);
    let mut max_r_early = 0i64;
    for step in 0..200u64 {
        sim.advance_step();
        let r = (0..dims.nvoxels())
            .filter(|&v| sim.world.epi.get(v) != EpiState::Healthy)
            .map(|v| dims.coord(v).chebyshev(center))
            .max()
            .unwrap_or(0);
        if step == 60 {
            max_r_early = r;
        }
    }
    let final_r = (0..dims.nvoxels())
        .filter(|&v| sim.world.epi.get(v) != EpiState::Healthy)
        .map(|v| dims.coord(v).chebyshev(center))
        .max()
        .unwrap_or(0);
    assert!(
        final_r > max_r_early,
        "infection front must advance: {max_r_early} -> {final_r}"
    );
    assert!(final_r >= 3, "infection must spread several voxels");
}

#[test]
fn more_foi_spread_infection_faster() {
    // §4.4's premise: more foci ⇒ more simultaneous activity.
    let measure = |foi: u32| {
        let p = SimParams::test_config(GridDims::new2d(48, 48), 120, foi, 5);
        let mut sim = SerialSim::new(p);
        sim.run();
        let s = sim.last_stats().unwrap();
        (48 * 48) - s.epi_healthy
    };
    let one = measure(1);
    let many = measure(16);
    assert!(
        many > 2 * one,
        "16 FOI should infect much more tissue than 1: {many} vs {one}"
    );
}

#[test]
fn tcells_reduce_tissue_damage() {
    // The immune response must matter: with T cells disabled, the
    // infection consumes more tissue. Uses the paper-similar compressed
    // dynamics (the test_config dynamics overwhelm a small grid before T
    // cells arrive) with a boosted T-cell supply so the effect is clear at
    // this miniature scale.
    let mut base = SimParams::scaled_to(GridDims::new2d(96, 96), 800, 8, 9);
    base.tcell_generation_rate *= 4.0;
    let mut with_t = SerialSim::new(base.clone());
    with_t.run();

    let mut no_t_params = base;
    no_t_params.tcell_generation_rate = 0.0;
    let mut without_t = SerialSim::new(no_t_params);
    without_t.run();

    let healthy_with = with_t.last_stats().unwrap().epi_healthy;
    let healthy_without = without_t.last_stats().unwrap().epi_healthy;
    assert!(
        healthy_with > healthy_without,
        "T cells should preserve tissue: {healthy_with} healthy (with) vs {healthy_without} (without)"
    );
    // And the T-cell run must actually have killed via apoptosis.
    assert!(with_t.history.peak(Metric::EpiApoptotic) > 0.0);
}

#[test]
fn extravasation_targets_inflamed_tissue() {
    // T cells enter where chemokine is, not uniformly: compare T-cell
    // density near vs far from the single focus at first entry.
    let dims = GridDims::new2d(64, 64);
    let mut p = SimParams::test_config(dims, 300, 1, 21);
    p.tcell_generation_rate = 50.0;
    // Short tissue residence: cells die before random-walking far, so the
    // occupancy distribution approximates the *entry* distribution.
    p.tcell_tissue_period = 4.0;
    let mut sim = SerialSim::new(p);
    let center = Coord::new(32, 32, 0);
    let mut near = 0u64;
    let mut far = 0u64;
    for _ in 0..300 {
        sim.advance_step();
        for v in 0..dims.nvoxels() {
            if sim.world.tcells[v].occupied() {
                if dims.coord(v).chebyshev(center) <= 16 {
                    near += 1;
                } else {
                    far += 1;
                }
            }
        }
    }
    // The near quadrant-equivalent area is ~(33/64)² ≈ 27 % of the grid;
    // uniform entry would put ~73 % of T-cell-steps far away.
    assert!(
        near > far,
        "T cells should concentrate near the infection: near={near} far={far}"
    );
}

#[test]
fn airways_block_local_spread() {
    // A solid airway wall must stop the infection (no epithelium to
    // infect, and diffusion-decay across the gap is negligible at test
    // scales with a wide wall).
    let dims = GridDims::new2d(40, 21);
    let mut p = SimParams::test_config(dims, 250, 0, 33);
    p.tcell_generation_rate = 0.0;
    p.virion_clearance = 0.05;
    let mut world = World::seeded(&p, FoiPattern::UniformLattice);
    // Seed on the left side; wall of airway columns x = 18..=22.
    world
        .virions
        .set(dims.index(Coord::new(8, 10, 0)), 10_000.0);
    let wall: Vec<usize> = (0..dims.nvoxels())
        .filter(|&v| {
            let c = dims.coord(v);
            (18..=22).contains(&c.x)
        })
        .collect();
    world.carve_airways(&wall);
    let mut sim = SerialSim::from_world(p, world);
    sim.run();
    let right_infected = (0..dims.nvoxels())
        .filter(|&v| {
            let c = dims.coord(v);
            c.x > 22 && !matches!(sim.world.epi.get(v), EpiState::Healthy | EpiState::Airway)
        })
        .count();
    let left_infected = (0..dims.nvoxels())
        .filter(|&v| {
            let c = dims.coord(v);
            c.x < 18 && !matches!(sim.world.epi.get(v), EpiState::Healthy | EpiState::Airway)
        })
        .count();
    assert!(left_infected > 0, "infection must take on the seeded side");
    assert_eq!(right_infected, 0, "the airway wall must block spread");
}

#[test]
fn incubating_cells_are_invisible_to_tcells() {
    // §2.2: incubating cells produce virus but are NOT detectable. A T
    // cell adjacent to only-incubating cells must never bind.
    use simcov_repro::simcov_core::rules::{plan_tcell, TCellAction};
    use simcov_repro::simcov_core::tcell::TCellSlot;
    let dims = GridDims::new2d(9, 9);
    let p = SimParams::test_config(dims, 10, 0, 1);
    let mut world = World::healthy(dims);
    let c = Coord::new(4, 4, 0);
    world.tcells[dims.index(c)] = TCellSlot::established(100, 0);
    for n in dims.neighbors(c).collect::<Vec<_>>() {
        world.epi.set(n, EpiState::Incubating, 100);
    }
    for step in 0..20u64 {
        if let TCellAction::TryBind { .. } = plan_tcell(&world, &p, step, c) {
            panic!("bound an incubating (undetectable) cell");
        }
    }
}

#[test]
fn higher_infectivity_accelerates_takeoff() {
    let run = |infectivity: f64| {
        let mut p = SimParams::test_config(GridDims::new2d(32, 32), 150, 1, 2);
        p.infectivity = infectivity;
        p.tcell_generation_rate = 0.0;
        let mut sim = SerialSim::new(p);
        sim.run();
        sim.history.peak(Metric::Virions)
    };
    let low = run(0.0005);
    let high = run(0.01);
    assert!(
        high > low,
        "higher infectivity must raise peak load: {high} vs {low}"
    );
}
