//! Schedule-adversarial delivery tests: the model's results must not depend
//! on the order in which messages land within a superstep.
//!
//! The BSP runtime canonicalizes every inbox by (source rank, emission
//! order) before compute, and per-voxel application is order-insensitive by
//! construction (exact summation, max-merge). These tests attack that claim
//! directly: a [`FaultPlan::shuffled`] storm permutes **every** rank's
//! assembled inbox at **every** superstep with seeded Fisher–Yates draws,
//! and the whole trajectory — per-step statistics and the final world —
//! must stay bitwise identical to the unperturbed run, on both parallel
//! executors.

use simcov_repro::pgas::FaultPlan;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn params(seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), 60, 8, seed)
}

/// Every superstep of a 60-step CPU run under a distinct per-(superstep,
/// rank) permutation: bitwise identity of history and world.
#[test]
fn cpu_shuffled_delivery_is_bitwise_identical() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(21), 4)).expect("valid config");
    clean.run().expect("no faults");

    // The CPU executor runs 3 supersteps per step.
    let plan = FaultPlan::shuffled(0xD15C0, 4, 60 * 3);
    let mut shuffled =
        CpuSim::new(CpuSimConfig::new(params(21), 4).with_fault_plan(plan)).expect("valid config");
    shuffled.run().expect("shuffles are benign");

    assert!(
        shuffled.recovery_log().is_empty(),
        "a reordering must never look like a failure"
    );
    assert!(
        shuffled.comm_counters().shuffled_inboxes > 0,
        "the storm must actually have fired"
    );
    assert_eq!(
        clean.history(),
        shuffled.history(),
        "delivery order leaked into the time series"
    );
    assert!(
        clean
            .gather_world()
            .first_difference(&shuffled.gather_world())
            .is_none(),
        "delivery order leaked into the final world"
    );
}

/// The same property on the GPU executor (2 supersteps per step).
#[test]
fn gpu_shuffled_delivery_is_bitwise_identical() {
    let mut clean = GpuSim::new(GpuSimConfig::new(params(23), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::shuffled(0x5EED, 4, 60 * 2);
    let mut shuffled =
        GpuSim::new(GpuSimConfig::new(params(23), 4).with_fault_plan(plan)).expect("valid config");
    shuffled.run().expect("shuffles are benign");

    assert!(shuffled.recovery_log().is_empty());
    assert!(shuffled.comm_counters().shuffled_inboxes > 0);
    assert_eq!(
        clean.history(),
        shuffled.history(),
        "delivery order leaked into the time series"
    );
    assert!(
        clean
            .gather_world()
            .first_difference(&shuffled.gather_world())
            .is_none(),
        "delivery order leaked into the final world"
    );
}

/// Two different shuffle seeds produce two different delivery schedules but
/// the same trajectory — and both match a third, unshuffled run even when
/// the executors disagree on rank count.
#[test]
fn shuffle_seed_and_rank_count_are_both_invisible() {
    let mut reference = CpuSim::new(CpuSimConfig::new(params(29), 2)).expect("valid config");
    reference.run().expect("no faults");

    for (seed, ranks) in [(0xAAAAu64, 4usize), (0xBBBB, 8)] {
        let plan = FaultPlan::shuffled(seed, ranks, 60 * 3);
        let mut sim = CpuSim::new(CpuSimConfig::new(params(29), ranks).with_fault_plan(plan))
            .expect("valid config");
        sim.run().expect("shuffles are benign");
        assert!(sim.comm_counters().shuffled_inboxes > 0);
        assert_eq!(
            reference.history(),
            sim.history(),
            "seed {seed:#x} on {ranks} ranks diverged"
        );
    }
}
