//! Schedule-adversarial delivery tests: the model's results must not depend
//! on the order in which messages land within a superstep.
//!
//! The BSP runtime canonicalizes every inbox by (source rank, emission
//! order) before compute, and per-voxel application is order-insensitive by
//! construction (exact summation, max-merge). These tests attack that claim
//! directly: a [`FaultPlan::shuffled`] storm permutes **every** rank's
//! assembled inbox at **every** superstep with seeded Fisher–Yates draws,
//! and the whole trajectory — per-step statistics and the final world —
//! must stay bitwise identical to the unperturbed run, on both parallel
//! executors.

use simcov_repro::pgas::{FaultEvent, FaultKind, FaultPlan};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn params(seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), 60, 8, seed)
}

/// Every superstep of a 60-step CPU run under a distinct per-(superstep,
/// rank) permutation: bitwise identity of history and world.
#[test]
fn cpu_shuffled_delivery_is_bitwise_identical() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(21), 4)).expect("valid config");
    clean.run().expect("no faults");

    // The CPU executor runs 3 supersteps per step.
    let plan = FaultPlan::shuffled(0xD15C0, 4, 60 * 3);
    let mut shuffled =
        CpuSim::new(CpuSimConfig::new(params(21), 4).with_fault_plan(plan)).expect("valid config");
    shuffled.run().expect("shuffles are benign");

    assert!(
        shuffled.recovery_log().is_empty(),
        "a reordering must never look like a failure"
    );
    assert!(
        shuffled.comm_counters().shuffled_inboxes > 0,
        "the storm must actually have fired"
    );
    assert_eq!(
        clean.history(),
        shuffled.history(),
        "delivery order leaked into the time series"
    );
    assert!(
        clean
            .gather_world()
            .first_difference(&shuffled.gather_world())
            .is_none(),
        "delivery order leaked into the final world"
    );
}

/// The same property on the GPU executor (2 supersteps per step).
#[test]
fn gpu_shuffled_delivery_is_bitwise_identical() {
    let mut clean = GpuSim::new(GpuSimConfig::new(params(23), 4)).expect("valid config");
    clean.run().expect("no faults");

    let plan = FaultPlan::shuffled(0x5EED, 4, 60 * 2);
    let mut shuffled =
        GpuSim::new(GpuSimConfig::new(params(23), 4).with_fault_plan(plan)).expect("valid config");
    shuffled.run().expect("shuffles are benign");

    assert!(shuffled.recovery_log().is_empty());
    assert!(shuffled.comm_counters().shuffled_inboxes > 0);
    assert_eq!(
        clean.history(),
        shuffled.history(),
        "delivery order leaked into the time series"
    );
    assert!(
        clean
            .gather_world()
            .first_difference(&shuffled.gather_world())
            .is_none(),
        "delivery order leaked into the final world"
    );
}

/// Two different shuffle seeds produce two different delivery schedules but
/// the same trajectory — and both match a third, unshuffled run even when
/// the executors disagree on rank count.
#[test]
fn shuffle_seed_and_rank_count_are_both_invisible() {
    let mut reference = CpuSim::new(CpuSimConfig::new(params(29), 2)).expect("valid config");
    reference.run().expect("no faults");

    for (seed, ranks) in [(0xAAAAu64, 4usize), (0xBBBB, 8)] {
        let plan = FaultPlan::shuffled(seed, ranks, 60 * 3);
        let mut sim = CpuSim::new(CpuSimConfig::new(params(29), ranks).with_fault_plan(plan))
            .expect("valid config");
        sim.run().expect("shuffles are benign");
        assert!(sim.comm_counters().shuffled_inboxes > 0);
        assert_eq!(
            reference.history(),
            sim.history(),
            "seed {seed:#x} on {ranks} ranks diverged"
        );
    }
}

/// A delivery storm of shuffled **and** duplicated coalesced batches, per
/// superstep, per rotating rank.
fn interleaving_storm(supersteps: u64, ranks: usize) -> FaultPlan {
    let mut events = Vec::new();
    for s in 0..supersteps {
        events.push(FaultEvent {
            superstep: s,
            rank: (s as usize) % ranks,
            kind: FaultKind::DeliveryShuffle {
                seed: 0xC0FF_EE00 ^ s,
            },
        });
        if s % 3 == 0 {
            events.push(FaultEvent {
                superstep: s,
                rank: ((s / 3) as usize + 1) % ranks,
                kind: FaultKind::MessageDuplicate,
            });
        }
    }
    FaultPlan::from_events(events)
}

/// Concurrent-delivery interleavings on the CPU executor: shuffled and
/// duplicated batches land while four ranks genuinely run on four workers,
/// with the CRC64/seal-scrub integrity lattice auditing every step. The
/// lattice must report **zero false positives** — duplicates are suppressed
/// and shuffles canonicalized without a single batch flagged corrupt or
/// retransmitted — and the trajectory must match the quiet inline run
/// bitwise.
#[test]
fn cpu_concurrent_interleavings_cause_no_false_positives() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(31), 4)).expect("valid config");
    clean.run().expect("no faults");

    // The CPU executor runs 3 supersteps per step.
    let cfg = CpuSimConfig::new(params(31), 4)
        .with_fault_plan(interleaving_storm(60 * 3, 4))
        .with_threads(4)
        .with_audit_period(1);
    let mut stormy = CpuSim::new(cfg).expect("valid config");
    stormy.run().expect("interleavings are benign");

    let cc = stormy.comm_counters();
    assert!(cc.shuffled_inboxes > 0, "shuffles must actually fire");
    assert!(
        cc.duplicates_suppressed > 0,
        "duplicates must actually fire"
    );
    assert_eq!(cc.corrupt_batches, 0, "integrity false positive");
    assert_eq!(cc.retransmits, 0, "spurious retransmit");
    assert!(
        stormy.recovery_log().is_empty(),
        "an interleaving must never look like a failure"
    );
    assert_eq!(
        clean.history(),
        stormy.history(),
        "concurrent delivery order leaked into the time series"
    );
    assert!(
        clean
            .gather_world()
            .first_difference(&stormy.gather_world())
            .is_none(),
        "concurrent delivery order leaked into the final world"
    );
}

/// The same storm on the GPU executor (2 supersteps per step), with workers
/// oversubscribed past the device count.
#[test]
fn gpu_concurrent_interleavings_cause_no_false_positives() {
    let mut clean = GpuSim::new(GpuSimConfig::new(params(33), 4)).expect("valid config");
    clean.run().expect("no faults");

    let cfg = GpuSimConfig::new(params(33), 4)
        .with_fault_plan(interleaving_storm(60 * 2, 4))
        .with_threads(6)
        .with_audit_period(1);
    let mut stormy = GpuSim::new(cfg).expect("valid config");
    stormy.run().expect("interleavings are benign");

    let cc = stormy.comm_counters();
    assert!(cc.shuffled_inboxes > 0);
    assert!(cc.duplicates_suppressed > 0);
    assert_eq!(cc.corrupt_batches, 0, "integrity false positive");
    assert_eq!(cc.retransmits, 0, "spurious retransmit");
    assert!(stormy.recovery_log().is_empty());
    assert_eq!(clean.history(), stormy.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&stormy.gather_world())
            .is_none(),
        "world diverged"
    );
}

/// The full shuffle storm with oversubscribed workers: every inbox of every
/// superstep permuted while eight workers contend for four rank bodies.
#[test]
fn shuffle_storm_with_oversubscribed_workers_is_bitwise_identical() {
    let mut clean = CpuSim::new(CpuSimConfig::new(params(37), 4)).expect("valid config");
    clean.run().expect("no faults");

    let cfg = CpuSimConfig::new(params(37), 4)
        .with_fault_plan(FaultPlan::shuffled(0xAB1E, 4, 60 * 3))
        .with_threads(8)
        .with_audit_period(1);
    let mut stormy = CpuSim::new(cfg).expect("valid config");
    stormy.run().expect("shuffles are benign");

    let cc = stormy.comm_counters();
    assert!(cc.shuffled_inboxes > 0);
    assert_eq!(cc.corrupt_batches, 0, "integrity false positive");
    assert!(stormy.recovery_log().is_empty());
    assert_eq!(clean.history(), stormy.history(), "time series diverged");
    assert!(
        clean
            .gather_world()
            .first_difference(&stormy.gather_world())
            .is_none(),
        "world diverged"
    );
}
