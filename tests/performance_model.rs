//! Sanity properties of the performance instrumentation and cost model —
//! the relationships the paper's evaluation depends on, checked on real
//! (small) runs.

use simcov_repro::gpusim::{CostModel, GPU_A100};
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig, GpuVariant};

fn params(side: u32, steps: u64, foi: u32) -> SimParams {
    SimParams::test_config(GridDims::new2d(side, side), steps, foi, 3)
}

#[test]
fn cpu_work_grows_with_foi() {
    // The CPU active list processes more voxels when activity is denser —
    // the mechanism behind Fig 8.
    let mut work = Vec::new();
    for foi in [1u32, 4, 16] {
        let mut cpu =
            CpuSim::new(CpuSimConfig::new(params(48, 120, foi), 4)).expect("valid config");
        cpu.run().expect("healthy run");
        work.push(cpu.total_counters().update.elements);
    }
    assert!(work[0] < work[1] && work[1] < work[2], "work {work:?}");
}

#[test]
fn gpu_full_sweep_variants_do_not_grow_with_foi() {
    // Without tiling the GPU iterates the whole space regardless of
    // activity (§3.4's unoptimized behaviour).
    let mut elems = Vec::new();
    for foi in [1u32, 16] {
        let mut gpu = GpuSim::new(
            GpuSimConfig::new(params(48, 60, foi), 4).with_variant(GpuVariant::FastReduction),
        )
        .expect("valid config");
        gpu.run().expect("healthy run");
        elems.push(gpu.total_counters().update.elements);
    }
    // FSM/diffusion sweeps are identical; only T-cell/extravasation work
    // differs slightly.
    let ratio = elems[1] as f64 / elems[0] as f64;
    assert!(
        ratio < 1.3,
        "full-sweep work should be ~activity-independent: {ratio}"
    );
}

#[test]
fn reduction_cost_dominates_unoptimized_variant() {
    // Fig 4's headline: reductions are the biggest cost without the fast
    // reduction, and the tree reduction removes almost all of it.
    let model = CostModel::default();
    let mut unopt =
        GpuSim::new(GpuSimConfig::new(params(48, 60, 8), 4).with_variant(GpuVariant::Unoptimized))
            .expect("valid config");
    unopt.run().expect("healthy run");
    // Zero out launch overheads: at this miniature scale fixed per-step
    // launches dominate everything; the paper-scale balance is between the
    // per-voxel work terms.
    let strip_launches = |mut c: simcov_repro::gpusim::DeviceCounters| {
        c.update.launches = 0;
        c.reduce.launches = 0;
        c.tile_check.launches = 0;
        c.halo.launches = 0;
        c
    };
    let b_unopt = model.device_breakdown(&GPU_A100, &strip_launches(unopt.max_device_counters()));
    assert!(
        b_unopt.reduce_s > b_unopt.update_s,
        "unoptimized: reduce {} should exceed update {}",
        b_unopt.reduce_s,
        b_unopt.update_s
    );

    let mut fast =
        GpuSim::new(GpuSimConfig::new(params(48, 60, 8), 4).with_variant(GpuVariant::Combined))
            .expect("valid config");
    fast.run().expect("healthy run");
    let b_fast = model.device_breakdown(&GPU_A100, &strip_launches(fast.max_device_counters()));
    assert!(
        b_fast.reduce_s < 0.2 * b_unopt.reduce_s,
        "tree reduction should slash reduce time: {} vs {}",
        b_fast.reduce_s,
        b_unopt.reduce_s
    );
}

#[test]
fn more_devices_less_max_device_work() {
    let mut prev = u64::MAX;
    for d in [1usize, 4, 16] {
        let mut gpu = GpuSim::new(GpuSimConfig::new(params(64, 60, 16), d)).expect("valid config");
        gpu.run().expect("healthy run");
        let w = gpu.max_device_counters().reduce.elements;
        assert!(w < prev, "reduce sweep per device must shrink with devices");
        prev = w;
    }
}

#[test]
fn halo_traffic_scales_with_boundary_not_area() {
    // Doubling the grid side should roughly double (not quadruple) the
    // per-device halo traffic.
    let run = |side: u32| {
        let mut gpu = GpuSim::new(GpuSimConfig::new(params(side, 40, 4), 4)).expect("valid config");
        gpu.run().expect("healthy run");
        gpu.total_counters().halo.bytes
    };
    let small = run(32);
    let large = run(64);
    let ratio = large as f64 / small as f64;
    assert!(
        ratio > 1.4 && ratio < 3.2,
        "halo bytes should scale ~linearly with the boundary: {ratio}"
    );
}

#[test]
fn comm_supersteps_cpu_three_gpu_two() {
    // The GPU algorithm needs one fewer communication wave than the CPU's
    // intent→result RPC pattern (§3.1) — plus the state wave each.
    let p = params(32, 50, 2);
    let mut cpu = CpuSim::new(CpuSimConfig::new(p.clone(), 4)).expect("valid config");
    cpu.run().expect("healthy run");
    assert_eq!(cpu.comm_counters().supersteps, 50 * 3);
    let mut gpu = GpuSim::new(GpuSimConfig::new(p, 4)).expect("valid config");
    gpu.run().expect("healthy run");
    assert_eq!(gpu.comm_counters().supersteps, 50 * 2);
}

#[test]
fn multinode_sync_shapes_strong_scaling() {
    // The cost model's saturation mechanism: per-step sync appears beyond
    // one node and grows with node count.
    let m = CostModel::default();
    let t4 = m.gpu_multinode_sync_time(1000, 4);
    let t8 = m.gpu_multinode_sync_time(1000, 8);
    let t64 = m.gpu_multinode_sync_time(1000, 64);
    assert_eq!(t4, 0.0);
    assert!(t8 > 0.0 && t64 > t8);
}

#[test]
fn extrapolation_preserves_per_step_ratios() {
    let mut gpu = GpuSim::new(GpuSimConfig::new(params(48, 60, 8), 4)).expect("valid config");
    gpu.run().expect("healthy run");
    let c = gpu.max_device_counters();
    let e = c.extrapolate(8.0);
    // Area-class: ×8³; launches: ×8.
    assert_eq!(e.reduce.elements, c.reduce.elements * 512);
    assert_eq!(e.update.launches, c.update.launches * 8);
    assert_eq!(e.halo.bytes, c.halo.bytes * 64);
}
