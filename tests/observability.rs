//! Integration tests for the observability layer: per-step [`StepRecord`]s
//! emitted through a [`MetricsSink`] must agree across executors, and the
//! runtime's per-superstep trace must reconcile exactly with the BSP
//! communication counters.

use simcov_repro::gpusim::SharedSink;
use simcov_repro::simcov_core::grid::GridDims;
use simcov_repro::simcov_core::params::SimParams;
use simcov_repro::simcov_cpu::{CpuSim, CpuSimConfig};
use simcov_repro::simcov_driver::Simulation;
use simcov_repro::simcov_gpu::{GpuSim, GpuSimConfig};

fn params(seed: u64) -> SimParams {
    SimParams::test_config(GridDims::new2d(32, 32), 30, 6, seed)
}

/// Both executors, same seed: the model-level fields of every per-step
/// record (agents, virions, chemokine) must be identical, step for step.
#[test]
fn cpu_and_gpu_step_records_agree() {
    for seed in [3u64, 17, 99] {
        let cpu_sink = SharedSink::new();
        let mut cpu = CpuSim::new(CpuSimConfig::new(params(seed), 4)).expect("valid config");
        cpu.set_metrics_sink(Box::new(cpu_sink.clone()));
        cpu.run().expect("healthy run");

        let gpu_sink = SharedSink::new();
        let mut gpu = GpuSim::new(GpuSimConfig::new(params(seed), 4)).expect("valid config");
        gpu.set_metrics_sink(Box::new(gpu_sink.clone()));
        gpu.run().expect("healthy run");

        let cpu_recs = cpu_sink.records();
        let gpu_recs = gpu_sink.records();
        assert_eq!(cpu_recs.len(), 30, "one record per step (seed {seed})");
        assert_eq!(cpu_recs.len(), gpu_recs.len());
        for (c, g) in cpu_recs.iter().zip(gpu_recs.iter()) {
            assert_eq!(c.step, g.step);
            assert_eq!(
                c.agents, g.agents,
                "tissue T-cell counts diverged at step {} (seed {seed})",
                c.step
            );
            assert_eq!(
                c.virions, g.virions,
                "virion mass diverged at step {} (seed {seed})",
                c.step
            );
            assert_eq!(
                c.chemokine, g.chemokine,
                "chemokine mass diverged at step {} (seed {seed})",
                c.step
            );
            assert!(c.real_seconds > 0.0 && g.real_seconds > 0.0);
            assert!(c.sim_seconds.is_finite() && g.sim_seconds.is_finite());
        }
    }
}

/// Step records are well-formed: steps are consecutive, and the per-step
/// communication deltas sum back to the runtime's cumulative counters.
#[test]
fn step_record_comm_deltas_sum_to_counters() {
    let sink = SharedSink::new();
    let mut sim = CpuSim::new(CpuSimConfig::new(params(7), 5)).expect("valid config");
    sim.set_metrics_sink(Box::new(sink.clone()));
    sim.run().expect("healthy run");

    let recs = sink.records();
    for (i, r) in recs.iter().enumerate() {
        assert_eq!(r.step, i as u64, "steps must be consecutive from 0");
    }
    let comm = sim.comm_counters();
    let rec_msgs: u64 = recs.iter().map(|r| r.comm_messages).sum();
    let rec_bytes: u64 = recs.iter().map(|r| r.comm_bytes).sum();
    assert_eq!(rec_msgs, comm.messages + comm.bulk_messages);
    assert_eq!(rec_bytes, comm.bytes + comm.bulk_bytes);
}

/// The trace's per-superstep events must reconcile exactly with the BSP
/// counters: one event per superstep, and summed volumes equal the
/// cumulative totals — on both executors.
#[test]
fn trace_comm_totals_equal_bsp_counters() {
    let mut cpu = CpuSim::new(CpuSimConfig::new(params(11), 4)).expect("valid config");
    cpu.enable_trace();
    cpu.run().expect("healthy run");
    check_trace_matches_counters(cpu.trace(), cpu.comm_counters(), "cpu");

    let mut gpu = GpuSim::new(GpuSimConfig::new(params(11), 4)).expect("valid config");
    gpu.enable_trace();
    gpu.run().expect("healthy run");
    check_trace_matches_counters(gpu.trace(), gpu.comm_counters(), "gpu");
}

fn check_trace_matches_counters(
    trace: &simcov_repro::pgas::Trace,
    comm: simcov_repro::pgas::CommCounters,
    who: &str,
) {
    let events: Vec<_> = trace.events_for("superstep").collect();
    assert_eq!(
        events.len() as u64,
        comm.supersteps,
        "{who}: one trace event per superstep"
    );
    let v = trace.total_volume();
    assert_eq!(v.messages, comm.messages, "{who}: p2p message totals");
    assert_eq!(v.bytes, comm.bytes, "{who}: p2p byte totals");
    assert_eq!(
        v.bulk_messages, comm.bulk_messages,
        "{who}: bulk message totals"
    );
    assert_eq!(v.bulk_bytes, comm.bulk_bytes, "{who}: bulk byte totals");
    for e in &events {
        assert!(e.wall_ns > 0, "{who}: every superstep span measured time");
    }
}

/// Metrics must be pure observation: installing a sink must not change the
/// trajectory.
#[test]
fn metrics_sink_does_not_perturb_simulation() {
    let mut plain = CpuSim::new(CpuSimConfig::new(params(23), 3)).expect("valid config");
    plain.run().expect("healthy run");

    let sink = SharedSink::new();
    let mut observed = CpuSim::new(CpuSimConfig::new(params(23), 3)).expect("valid config");
    observed.set_metrics_sink(Box::new(sink.clone()));
    observed.enable_trace();
    observed.run().expect("healthy run");

    assert_eq!(plain.history().steps.len(), observed.history().steps.len());
    for (a, b) in plain
        .history()
        .steps
        .iter()
        .zip(observed.history().steps.iter())
    {
        assert!(
            a.approx_eq(b, 0.0),
            "observation changed the trajectory at step {}",
            a.step
        );
    }
}
